"""Storage-area accounting (paper Tables 4, 5 and 7).

All numbers are pure bit counting:

- **per-line schemes** store their checkbits plus one disable bit with
  every L2 line (SECDED: 11+1 = 12 bits/line -> 2.3% of a 2MB L2, the
  paper's reference point);
- **Killi** stores 4 parity bits + 2 DFH bits per L2 line, plus the
  ECC cache: per entry 23 payload bits (12 non-resident parity + 11
  SECDED checkbits), a 15-bit tag (11-bit L2 set index + 4-bit way),
  valid and LRU state — 41 bits, exactly Table 3's "ECC cache line
  size".  This model reproduces the paper's Killi area numbers to the
  rounding digit (24.6KB at 1:256, 34.25KB at 1:16).
- **stronger codes in the ECC cache** (Table 4): a code whose
  checkbits fit in the 23-bit payload (DECTED's 21) is free — Killi
  stores SECDED+12 parity during training and the stronger code's
  checkbits afterwards in the same bits (paper Section 5.2).  Larger
  codes provision 12 training-parity bits + their checkbits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ecc.olsc import olsc_checkbits
from repro.ecc.registry import checkbits_for

__all__ = [
    "per_line_scheme_bits",
    "killi_ecc_entry_bits",
    "killi_area_bits",
    "AreaModel",
]

#: Per-L2-line bits Killi keeps in the main arrays: 4 parity + 2 DFH.
KILLI_LINE_BITS = 6

#: ECC-cache entry overhead: 15-bit tag (L2 set + way), valid, 2b LRU.
ECC_ENTRY_OVERHEAD_BITS = 18

#: Payload available from SECDED training state: 12 parity + 11 checkbits.
ECC_ENTRY_BASE_PAYLOAD = 23

#: MS-ECC dedicated storage per line, calibrated to the paper's Table 5
#: "% area over L2" row (38.6% of 512 data bits).
MSECC_LINE_BITS = 198


def per_line_scheme_bits(code: str, k: int = 512) -> int:
    """Bits/line for an MBIST + per-line-ECC scheme (checkbits + disable).

    >>> per_line_scheme_bits("secded")
    12
    >>> per_line_scheme_bits("dected")
    22
    """
    if code == "msecc":
        return MSECC_LINE_BITS
    return checkbits_for(code, k) + 1


def killi_ecc_entry_bits(code: str = "secded", k: int = 512) -> int:
    """Total bits of one ECC-cache entry when it stores ``code``.

    >>> killi_ecc_entry_bits("secded")
    41
    >>> killi_ecc_entry_bits("dected")   # fits in the freed parity bits
    41
    >>> killi_ecc_entry_bits("tecqed")
    61
    >>> killi_ecc_entry_bits("6ec7ed")
    91
    """
    checkbits = checkbits_for(code, k)
    if checkbits <= ECC_ENTRY_BASE_PAYLOAD:
        payload = ECC_ENTRY_BASE_PAYLOAD
    else:
        payload = 12 + checkbits  # 12 training-parity bits + the code
    return payload + ECC_ENTRY_OVERHEAD_BITS


def killi_area_bits(n_lines: int, ecc_ratio: int, code: str = "secded", k: int = 512) -> int:
    """Total Killi storage overhead in bits for an ``n_lines`` L2."""
    entries = n_lines // ecc_ratio
    return entries * killi_ecc_entry_bits(code, k) + n_lines * KILLI_LINE_BITS


@dataclass
class AreaModel:
    """Area accounting for a given L2 geometry.

    Parameters
    ----------
    n_lines:
        L2 lines (32768 for the paper's 2MB / 64B configuration).
    line_bits:
        Data bits per line (512).
    """

    n_lines: int = 32768
    line_bits: int = 512

    @property
    def l2_data_bits(self) -> int:
        return self.n_lines * self.line_bits

    def scheme_bits(self, scheme: str, ecc_ratio: int | None = None, code: str = "secded") -> int:
        """Total overhead bits of a named scheme.

        ``scheme`` is one of "secded", "dected", "tecqed", "6ec7ed",
        "msecc", "flair" (== secded per line) or "killi" (requires
        ``ecc_ratio``; ``code`` selects the ECC-cache code).
        """
        if scheme == "killi":
            if ecc_ratio is None:
                raise ValueError("killi area needs an ecc_ratio")
            return killi_area_bits(self.n_lines, ecc_ratio, code, self.line_bits)
        if scheme == "flair":
            return self.n_lines * per_line_scheme_bits("secded", self.line_bits)
        return self.n_lines * per_line_scheme_bits(scheme, self.line_bits)

    def ratio_vs_secded(self, scheme: str, ecc_ratio: int | None = None, code: str = "secded") -> float:
        """Storage normalized to per-line SECDED (Tables 4/5's metric)."""
        return self.scheme_bits(scheme, ecc_ratio, code) / self.scheme_bits("secded")

    def percent_of_l2(self, scheme: str, ecc_ratio: int | None = None, code: str = "secded") -> float:
        """Overhead as % of the L2 data array (Table 5, row 3)."""
        return 100.0 * self.scheme_bits(scheme, ecc_ratio, code) / self.l2_data_bits

    # -- paper tables ------------------------------------------------------

    def table5(self, ratios=(256, 128, 64, 32, 16)) -> dict:
        """Table 5: area of DECTED / MS-ECC / SECDED / Killi variants."""
        out = {
            "dected": {
                "ratio": self.ratio_vs_secded("dected"),
                "percent": self.percent_of_l2("dected"),
            },
            "msecc": {
                "ratio": self.ratio_vs_secded("msecc"),
                "percent": self.percent_of_l2("msecc"),
            },
            "secded": {
                "ratio": 1.0,
                "percent": self.percent_of_l2("secded"),
            },
        }
        for ratio in ratios:
            out[f"killi_1:{ratio}"] = {
                "ratio": self.ratio_vs_secded("killi", ratio),
                "percent": self.percent_of_l2("killi", ratio),
            }
        return out

    def table4(self, codes=("dected", "tecqed", "6ec7ed"), ratios=(256, 128, 64, 32, 16)) -> dict:
        """Table 4: Killi with stronger ECC codes, normalized to SECDED."""
        return {
            code: {
                f"1:{ratio}": self.ratio_vs_secded("killi", ratio, code)
                for ratio in ratios
            }
            for code in codes
        }

    def table7_killi_vs_msecc(self, olsc_t: int = 11, ecc_ratio: int = 8) -> float:
        """Table 7: Killi-with-OLSC storage as a fraction of MS-ECC's.

        MS-ECC provisions OLSC checkbits for *every* line; Killi only
        for 1 in ``ecc_ratio`` lines (plus parity + DFH per line).
        """
        olsc_bits = olsc_checkbits(self.line_bits, olsc_t)
        msecc_bits = self.n_lines * (olsc_bits + 1)
        entries = self.n_lines // ecc_ratio
        killi_bits = (
            entries * (12 + olsc_bits + ECC_ENTRY_OVERHEAD_BITS)
            + self.n_lines * KILLI_LINE_BITS
        )
        return killi_bits / msecc_bits
