"""Closed-form models from the paper's evaluation.

- :mod:`repro.analysis.coverage` — Section 5.3's fault-classification
  coverage equations (Figure 6) and the Section 5.6.2 masked-fault SDC
  probability.
- :mod:`repro.analysis.area` — storage-area accounting for every
  protection scheme (Tables 4, 5 and 7).
- :mod:`repro.analysis.power` — the normalized power model (Table 6).
"""

from repro.analysis.area import (
    AreaModel,
    killi_area_bits,
    killi_ecc_entry_bits,
    per_line_scheme_bits,
)
from repro.analysis.coverage import CoverageModel
from repro.analysis.montecarlo import CoverageEstimate, CoverageSampler
from repro.analysis.power import PowerModel
from repro.analysis.sensitivity import pcell_sensitivity, scaled_cell_model
from repro.analysis.vmin import VminAnalyzer

__all__ = [
    "CoverageModel",
    "CoverageSampler",
    "CoverageEstimate",
    "AreaModel",
    "killi_area_bits",
    "killi_ecc_entry_bits",
    "per_line_scheme_bits",
    "PowerModel",
    "VminAnalyzer",
    "pcell_sensitivity",
    "scaled_cell_model",
]
