"""Scrubber for reclaiming soft-error-disabled lines (paper footnote 7).

A line can be disabled by the *combination* of one LV fault and a
transient soft error (or a 2-bit soft error on a fault-free line).
Those disables are spurious: the transient is gone after the next
write.  The paper notes that "disabled lines due to soft errors can
also be reclaimed by a scrubber" — this module implements that
scrubber.

The scrub walk visits disabled lines and resets their DFH to b'01,
re-enabling the way.  Genuinely multi-faulted lines will simply be
re-disabled the first time Killi's training touches them (one
error-induced miss), while soft-error victims rejoin the usable
capacity permanently.  ``interval`` paces the walk in scrub steps per
call, modelling a background engine that inspects a few lines per
epoch.
"""

from __future__ import annotations

from repro.core.dfh import Dfh
from repro.core.killi import KilliScheme

__all__ = ["Scrubber"]


class Scrubber:
    """Background walker that gives disabled lines a second chance.

    Parameters
    ----------
    scheme:
        The Killi scheme whose lines are scrubbed (its attached cache
        provides the tag store).
    lines_per_step:
        How many lines one :meth:`step` visits.
    """

    def __init__(self, scheme: KilliScheme, lines_per_step: int = 64):
        if lines_per_step < 1:
            raise ValueError("lines_per_step must be positive")
        self.scheme = scheme
        self.lines_per_step = lines_per_step
        self._cursor = 0
        self.reclaimed = 0
        self.steps = 0

    def step(self) -> int:
        """Visit the next window of lines; returns how many it re-enabled."""
        scheme = self.scheme
        cache = scheme.cache
        if cache is None:
            raise RuntimeError("scheme is not attached to a cache")
        geometry = scheme.geometry
        n_lines = geometry.n_lines
        reclaimed = 0
        for _ in range(self.lines_per_step):
            line_id = self._cursor
            self._cursor = (self._cursor + 1) % n_lines
            if int(scheme.dfh[line_id]) != int(Dfh.DISABLED):
                continue
            set_index, way = divmod(line_id, geometry.associativity)
            if not cache.tags.is_disabled(set_index, way):
                continue
            # Second chance: back to the initial (unknown) state.  The
            # line is invalid, so the next fill re-runs training with
            # fresh data (any transient is overwritten).
            cache.tags.enable(set_index, way)
            scheme._set_dfh(line_id, Dfh.DISABLED, Dfh.INITIAL)
            scheme.errors.clear(line_id)
            reclaimed += 1
        self.reclaimed += reclaimed
        self.steps += 1
        return reclaimed

    def full_sweep(self) -> int:
        """Scrub every line once; returns the number re-enabled."""
        geometry = self.scheme.geometry
        total = 0
        steps = (geometry.n_lines + self.lines_per_step - 1) // self.lines_per_step
        for _ in range(steps):
            total += self.step()
        return total
