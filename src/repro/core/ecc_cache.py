"""The ECC cache (paper Section 4.1).

A small set-associative structure holding the error-protection
metadata (11 SECDED checkbits + the 12 non-resident parity bits, 23
bits of payload) for the subset of L2 lines that currently need it —
lines in DFH b'01 (training) or b'10 (one LV fault).

Key properties from the paper:

- indexed by the same physical address as the L2 (we derive the ECC
  set from the low bits of the L2 set index);
- tags hold the *index and way of the protected L2 line* rather than
  the physical address, to reduce area;
- much smaller than the L2 (1:256 .. 1:16 lines), so disjoint L2 sets
  contend for the same ECC set: an ECC eviction orphans — and thus
  forces the invalidation of — an L2 line from an unrelated set;
- replacement is coordinated with the L2: touching a protected L2
  line promotes its ECC entry to MRU (Section 4.4).

This module is purely structural (who is protected, who gets evicted);
the checkbit *values* are implicit in the sparse error-vector model of
:mod:`repro.core.linestate`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

__all__ = ["EccCache"]

#: An ECC-cache tag: (L2 set index, L2 way) of the line it protects.
Key = Tuple[int, int]


class EccCache:
    """Set-associative ECC metadata cache with LRU replacement.

    Parameters
    ----------
    n_entries:
        Total entry count (L2 lines / ecc_ratio).
    assoc:
        Associativity (Table 3: 4).
    l2_shape:
        Optional ``(n_l2_sets, l2_assoc)`` of the protected cache.
        When given, flat numpy membership mirrors are maintained
        alongside the key lists: a per-L2-line membership flag and a
        per-L2-set live-entry count, making :meth:`contains` and
        :meth:`has_entries_for` O(1) scalar probes instead of key-list
        scans — the batched engine hits both on every set-inertness
        check.  The mirrors are pure acceleration; the MRU-ordered key
        lists stay authoritative for replacement.
    """

    def __init__(
        self,
        n_entries: int,
        assoc: int = 4,
        l2_shape: Optional[Tuple[int, int]] = None,
    ):
        if n_entries < assoc:
            raise ValueError("need at least one full set of entries")
        if n_entries % assoc:
            raise ValueError("n_entries must be divisible by assoc")
        self.n_entries = n_entries
        self.assoc = assoc
        self.n_sets = n_entries // assoc
        # Each set: list of keys, MRU first.  len <= assoc.
        self._sets: List[List[Key]] = [[] for _ in range(self.n_sets)]
        self.allocations = 0
        self.evictions = 0
        self.accesses = 0
        if l2_shape is not None:
            n_l2_sets, l2_assoc = l2_shape
            self._l2_assoc = l2_assoc
            # Scalar reads/writes go through memoryviews: plain-int
            # results at list-indexing speed, with the numpy arrays
            # retained for vectorized consumers.
            self._member_np = np.zeros(n_l2_sets * l2_assoc, dtype=bool)
            self._member = memoryview(self._member_np)
            self._count_np = np.zeros(n_l2_sets, dtype=np.int32)
            self._count_for_set = memoryview(self._count_np)
        else:
            self._l2_assoc = None

    def index_of(self, l2_set: int) -> int:
        """ECC set servicing an L2 set (address-derived)."""
        return l2_set % self.n_sets

    def contains(self, l2_set: int, l2_way: int) -> bool:
        """Is (l2_set, l2_way) currently protected?"""
        if self._l2_assoc is not None:
            return self._member[l2_set * self._l2_assoc + l2_way]
        return (l2_set, l2_way) in self._sets[l2_set % self.n_sets]

    def has_entries_for(self, l2_set: int) -> bool:
        """Does any way of the L2 set currently hold an entry?

        O(1) against the per-set live-entry counter when the L2 shape
        is known (one scan of the ≤ assoc servicing entries otherwise)
        — the batched engine's set-inertness probe: a set with no
        entries can never be invalidated by another set's ECC-cache
        contention.
        """
        if self._l2_assoc is not None:
            return self._count_for_set[l2_set] != 0
        for key in self._sets[l2_set % self.n_sets]:
            if key[0] == l2_set:
                return True
        return False

    def touch(self, l2_set: int, l2_way: int) -> None:
        """Promote the entry to MRU (coordinated replacement)."""
        self.accesses += 1
        entries = self._sets[l2_set % self.n_sets]
        key = (l2_set, l2_way)
        entries.remove(key)
        entries.insert(0, key)

    def insert(self, l2_set: int, l2_way: int) -> Optional[Key]:
        """Allocate an entry for (l2_set, l2_way); return the evicted key.

        The key must not already be present.  Returns the (l2_set,
        l2_way) whose entry was evicted to make room, or None if a free
        slot existed — the caller must invalidate the evicted L2 line,
        which is now unprotected.
        """
        self.accesses += 1
        entries = self._sets[l2_set % self.n_sets]
        key = (l2_set, l2_way)
        if key in entries:
            raise ValueError(f"ECC entry for {key} already present")
        self.allocations += 1
        evicted = None
        if len(entries) >= self.assoc:
            evicted = entries.pop()
            self.evictions += 1
        entries.insert(0, key)
        if self._l2_assoc is not None:
            assoc = self._l2_assoc
            self._member[l2_set * assoc + l2_way] = True
            self._count_for_set[l2_set] += 1
            if evicted is not None:
                self._member[evicted[0] * assoc + evicted[1]] = False
                self._count_for_set[evicted[0]] -= 1
        return evicted

    def remove(self, l2_set: int, l2_way: int) -> bool:
        """Free the entry for (l2_set, l2_way); True if one existed."""
        if self._l2_assoc is not None and not self._member[
            l2_set * self._l2_assoc + l2_way
        ]:
            return False
        entries = self._sets[l2_set % self.n_sets]
        key = (l2_set, l2_way)
        if key in entries:
            entries.remove(key)
            if self._l2_assoc is not None:
                self._member[l2_set * self._l2_assoc + l2_way] = False
                self._count_for_set[l2_set] -= 1
            return True
        return False

    def clear(self) -> None:
        """Drop every entry (DFH reset)."""
        for entries in self._sets:
            entries.clear()
        if self._l2_assoc is not None:
            self._member_np[:] = False
            self._count_np[:] = 0

    @property
    def occupancy(self) -> int:
        """Number of live entries."""
        return sum(len(entries) for entries in self._sets)
