"""Cluster-exact batched replay interpreter for Killi.

The batched engine's probe path (:func:`repro.cache.soa.replay_clean_set`)
only batches *scheme-inert* sets; for Killi at low voltage that leaves
the busiest part of the kernel — DFH warmup, ECC-cache contention,
faulted-line classification — on the per-access Python path.  This
module batches the *general* case instead: a shadow interpreter that
simulates an arbitrary access subsequence with full Killi semantics
(Table 2 classification, ECC-cache contention, eviction training,
victim priorities) against copy-on-write state, then commits the net
effect to the real cache/scheme structures in bulk.

Why clusters
------------
ECC-cache contention couples L2 sets: an insert into ECC set ``c`` can
evict — and thereby invalidate or disable — a line of any L2 set with
``l2_set % ecc.n_sets == c``.  That is the *only* cross-set coupling in
the scheme, so the L2-bound stream partitions exactly into independent
*clusters* (one per ECC set), each of which can be interpreted as a
unit in its original access order.

Why commits are exact
---------------------
Every event in the model is deterministic except one: a write hit on a
slot with active LV faults re-rolls fault masking with the *shared*
RNG stream (:meth:`~repro.core.linestate.LineErrorModel.on_write_hit`).
The interpreter therefore simulates with pure predictions only — fills
use the deterministic masking coins
(:meth:`~repro.core.linestate.LineErrorModel.predicted_fill_row`) —
and *aborts* when it reaches a shared-RNG write hit, before touching
anything for that access.  Because the simulated prefix is exact, it
is committed rather than discarded; the engine then runs the aborting
access through the real per-access path (consuming the RNG draw at the
correct point of the global order — see the abort min-heap in
:meth:`~repro.gpu.engine.GpuSimulator._run_batched`) and resumes the
cluster right after it.

Commit equivalences (vs the per-access reference path)
------------------------------------------------------
- *LRU*: touched ways are replayed through ``lru.touch`` in final
  recency order — same convention as ``apply_set_replay``; absolute
  clock values differ but the per-set age *order*, which is all the
  replacement policy reads, is identical.  ``demote`` calls are
  skipped: a demoted way is invalid, and ages of invalid ways are
  never consulted until a refill touches them.
- *Hit memo*: instead of replaying per-set epoch bumps, every
  materialized set's hit stamps are cleared.  Re-memoization on the
  next hit reproduces the memoized replay bit-exactly (hit outcomes
  are deterministic), so this only costs one extra dispatch per line.
- *Error rows*: per-slot fill/overwrite effects collapse to the last
  event per slot; the commit replays it through the real
  ``on_fill``/``clear``, reproducing exactly the row the per-access
  sequence would have left (fills are salt-keyed and idempotent).
  Slots whose events are no-ops (no active faults, clean row) are not
  tracked at all.
"""

from __future__ import annotations

from bisect import insort

import numpy as np

from repro.cache.soa import export_set_state
from repro.core.dfh import Dfh, DfhAction, classify_cached
from repro.core.linestate import Signals
from repro.testing.invariants import (
    InvariantError,
    check_set_invariants,
    invariants_enabled,
)

__all__ = ["KilliClusterInterpreter"]

_S0 = int(Dfh.STABLE_0)
_INI = int(Dfh.INITIAL)
_S1 = int(Dfh.STABLE_1)
_DIS = int(Dfh.DISABLED)

#: fill priority per DFH value (must match KilliScheme._PRIORITY).
#: INITIAL's priority (2) is the global maximum, so victim scans may
#: stop at the first INITIAL way: first-max tie-breaking cannot prefer
#: a later way once the maximum has been seen.
_PRIORITY = (1, 2, 0, 0)
_PRIO_MAX = 2

_CLEAN_SIG = Signals(0, True, True)

#: Marker distinguishing "memoized as empty" from "not memoized".
_EMPTY = object()


class _SetShadow:
    """Copy-on-write replay state of one L2 set."""

    __slots__ = (
        "resident",
        "way_lines",
        "orig",
        "free",
        "disabled",
        "new_disabled",
        "touched",
        "dfh",
        "off_d",
        "uns_d",
        "dis_d",
        "triv",
        "quiet",
    )


class KilliClusterInterpreter:
    """Shadow interpreter over one ECC-contention cluster at a time.

    Created once per (scheme, cache) pair via
    :meth:`~repro.core.killi.KilliScheme.batch_interpreter`; the engine
    calls :meth:`run` per cluster (and per resume after an abort).
    Each ``run`` is one transaction: simulate from ``start``, commit
    the exact net effect, and return either None (subsequence fully
    consumed) or the offset of the first access that needs the real
    per-access path (a shared-RNG write hit).
    """

    def __init__(self, scheme, cache):
        self._scheme = scheme
        self._cache = cache
        self._errors = scheme.errors
        self._fault_map = scheme.errors.fault_map
        self._ecc = scheme.ecc
        self.ecc_n_sets = scheme.ecc.n_sets
        self._ecc_assoc = scheme.ecc.assoc
        geometry = cache.geometry
        self._assoc = geometry.associativity
        self._n_sets = geometry.n_sets
        self._line_bytes = geometry.line_bytes
        self._dfh_mv = scheme.dfh
        config = scheme.config
        self._iwt = config.inverted_write_training
        self._train_on_evict = config.train_on_evict
        self._prio_repl = config.priority_replacement
        self._train_segs = config.training_segments
        self._stable_segs = config.stable_segments
        self._lat_hit = cache._lat_hit
        self._lat_hit_corrected = cache._lat_hit_corrected
        self._lat_miss = cache._lat_miss
        self._lat_tag = cache._lat_tag
        # Memos pure in (slot, salt[, segments, use_ecc]) at a fixed
        # voltage: predicted fill rows and their signal signatures.
        self._row_memo: dict = {}
        self._sig_memo: dict = {}
        self._memo_voltage = None
        self._act_off = None
        # Per-slot purity bitmap: pure[slot] == 1 iff the slot is
        # STABLE_0 with an empty real error vector, so a read hit on it
        # is a pure LRU touch (serve clean, no classification, no
        # transition).  Kept in sync across kernels: commits refresh
        # exactly the slots whose DFH or error rows they changed,
        # engine-fallback write hits are re-checked via _stale_slots,
        # and external error injections drop the whole map through the
        # chained mutation hook.  Within a transaction the bitmap is
        # only trusted for slots with no shadow row events.
        self._pure = None
        # cluster -> slot whose RNG-abort write the engine replays
        # through the real per-access path before resuming the cluster.
        # The refresh must wait for that resume: other clusters' _begin
        # calls interleave between the abort and the replay, so a global
        # stale set would be drained while the real row is still clean.
        self._stale_slots: dict = {}
        prev_hook = self._errors.external_mutation_hook

        def _on_external_mutation(*args):
            self._pure = None
            if prev_hook is not None:
                prev_hook(*args)

        self._errors.external_mutation_hook = _on_external_mutation
        # Armed invariants (REPRO_CHECK_INVARIANTS): each transaction
        # snapshots the shared RNG stream position at _begin and
        # asserts at _commit that the simulation window drew nothing
        # (RNG-draw-count conservation between the batched and scalar
        # paths), then re-checks every committed set's structure.
        self._check_invariants = invariants_enabled()
        self._rng_mark = None
        self._cluster = -1
        self._begin(-1)

    # -- lifecycle ---------------------------------------------------------

    def begin_kernel(self) -> None:
        """Revalidate the voltage-keyed memos before a kernel runs."""
        errors = self._errors
        offsets = errors._act_offsets
        if offsets is None:
            offsets = errors._ensure_active()
        if errors.voltage != self._memo_voltage or offsets is not self._act_off:
            self._row_memo.clear()
            self._sig_memo.clear()
            self._memo_voltage = errors.voltage
            self._act_off = offsets
            self._pure = None
        if self._pure is None:
            dirty = np.asarray(errors._weights) != 0
            # A plain list, not a numpy array: the hot loop reads one
            # slot per hit and list indexing is the cheapest form.
            self._pure = (
                ((self._scheme._dfh_np == _S0) & ~dirty)
                .astype(np.uint8)
                .tolist()
            )
            self._stale_slots.clear()

    def _begin(self, cluster: int) -> None:
        slot = self._stale_slots.pop(cluster, None)
        if slot is not None:
            # This cluster's aborted write hit has now been replayed by
            # the engine through the real per-access path (it always is
            # before the cluster resumes); re-derive the slot's purity.
            self._pure[slot] = (
                1
                if self._dfh_mv[slot] == _S0 and not self._errors.is_dirty(slot)
                else 0
            )
        self._cluster = cluster
        self._sets: dict = {}
        self._dfh_over: dict = {}
        self._trans = [0] * 16  # flat (old << 2 | new) transition counts
        self._slot_state: dict = {}
        # Shadow ECC keys as flat slot ints (set * assoc + way): the
        # hot paths already have the slot in hand, so membership tests
        # are int compares with no tuple allocation.
        assoc = self._assoc
        self._ecc_entries: list = (
            [key_set * assoc + key_way for key_set, key_way in self._ecc._sets[cluster]]
            if cluster >= 0
            else []
        )
        self._d_ecc_acc = 0
        self._d_ecc_alloc = 0
        self._d_ecc_evict = 0
        self._d_reads = 0
        self._d_read_hits = 0
        self._d_read_misses = 0
        self._d_writes = 0
        self._d_write_hits = 0
        self._d_write_misses = 0
        self._d_evictions = 0
        self._d_fills = 0
        self._d_bypasses = 0
        self._d_error_misses = 0
        self._d_corrected = 0
        self._d_invalidations = 0
        self._d_ecc_evict_inval = 0
        self._d_mem_reads = 0
        self._d_mem_writes = 0
        self._d_hits_served = 0
        self._d_sdc = 0
        self._d_ecc_corrections = 0
        self._d_reclass_clean = 0
        self._d_evict_disables = 0
        if self._check_invariants and cluster >= 0:
            self._rng_mark = repr(self._errors.rng.bit_generator.state)

    # -- shadow state ------------------------------------------------------

    def _materialize(self, set_index: int) -> _SetShadow:
        tags = self._cache.tags
        way_lines, seed, free_ways = export_set_state(
            tags, self._cache.lru, set_index
        )
        st = _SetShadow()
        st.way_lines = list(way_lines)
        st.orig = list(way_lines)
        st.resident = dict(seed)
        st.free = list(free_ways)
        if tags.disabled_in_set[set_index]:
            st.disabled = {
                way
                for way in range(self._assoc)
                if tags.is_disabled(set_index, way)
            }
        else:
            st.disabled = set()
        st.new_disabled = set()
        st.touched = set()
        # Per-way DFH values as a plain list: the overlay dict never
        # holds a slot before its set materializes (every write goes
        # through _set_dfh, which needs the shadow), so the real array
        # is authoritative here; _set_dfh keeps the copy in sync.
        base = set_index * self._assoc
        st.dfh = self._scheme._dfh_np[base : base + self._assoc].tolist()
        st.off_d = 0
        st.uns_d = 0
        st.dis_d = 0
        st.quiet, st.triv = self._probe_set(set_index)
        self._sets[set_index] = st
        return st

    def _probe_set(self, set_index: int):
        """``(quiet, triv)`` micro-fast-path flags of a set.

        ``quiet``: no slot in the set has active LV faults or a dirty
        real error vector.  Both are fixed for the whole transaction
        (the CSR only changes with voltage, real rows only at commit),
        and a quiet set can never acquire shadow row events — every
        track_fill/track_clear on it is a no-op.

        ``triv``: quiet, and additionally every way is STABLE_0 (or
        DISABLED) with no ECC-cache entry pointing at the set.  Such a
        set replays as pure dict-LRU: accesses have no scheme effect
        beyond ``hits_served``.  Trivality is monotone within a
        transaction (fills stay STABLE_0 and insert nothing); a quiet
        set whose last unstable way reclassifies to STABLE_0 mid-run
        is *upgraded* to triv at that transition (see ``_set_dfh``).
        Shadow ECC state is authoritative — the whole servicing ECC
        set belongs to this cluster.
        """
        base = set_index * self._assoc
        stop = base + self._assoc
        act = self._act_off
        quiet = act[stop] <= act[base] and not self._errors.dirty_in_range(
            base, stop
        )
        if not quiet or self._scheme._unstable_in_set[set_index]:
            return quiet, False
        for key in self._ecc_entries:
            if base <= key < stop:
                return quiet, False
        return quiet, True

    def _dfh_at(self, slot: int) -> int:
        value = self._dfh_over.get(slot)
        return self._dfh_mv[slot] if value is None else value

    def _set_dfh(self, st: _SetShadow, slot: int, old: int, new: int) -> None:
        if old == new:
            return
        # Conservative: any transition drops purity; the commit fixup
        # (and the fast-clean hit path) restore it exactly.
        self._pure[slot] = 0
        self._dfh_over[slot] = new
        st.dfh[slot % self._assoc] = new
        if old == _INI:
            st.off_d += 1
        elif new == _INI:
            st.off_d -= 1
        if (old == _INI or old == _S1) != (new == _INI or new == _S1):
            st.uns_d += 1 if (new == _INI or new == _S1) else -1
        if old == _DIS:
            st.dis_d -= 1
        elif new == _DIS:
            st.dis_d += 1
        self._trans[(old << 2) | new] += 1
        if new == _S0 and st.quiet and not st.triv:
            # A quiet set whose last unstable way just stabilised (and
            # that holds no ECC entry) is pure dict-LRU from here on.
            assoc = self._assoc
            set_index = slot // assoc
            if self._scheme._unstable_in_set[set_index] + st.uns_d == 0:
                base = set_index * assoc
                stop = base + assoc
                for key in self._ecc_entries:
                    if base <= key < stop:
                        break
                else:
                    st.triv = True

    # -- shadow ECC cache --------------------------------------------------

    def _ecc_contains(self, set_index: int, way: int) -> bool:
        return set_index * self._assoc + way in self._ecc_entries

    def _ecc_touch(self, set_index: int, way: int) -> None:
        self._d_ecc_acc += 1
        entries = self._ecc_entries
        key = set_index * self._assoc + way
        entries.remove(key)
        entries.insert(0, key)

    def _ecc_insert(self, set_index: int, way: int):
        """Insert; returns the evicted slot key or None."""
        self._d_ecc_acc += 1
        entries = self._ecc_entries
        key = set_index * self._assoc + way
        if key in entries:
            raise ValueError(f"ECC entry for slot {key} already present")
        self._d_ecc_alloc += 1
        evicted = None
        if len(entries) >= self._ecc_assoc:
            evicted = entries.pop()
            self._d_ecc_evict += 1
        entries.insert(0, key)
        return evicted

    def _ecc_remove(self, set_index: int, way: int) -> None:
        key = set_index * self._assoc + way
        entries = self._ecc_entries
        if key in entries:
            entries.remove(key)

    # -- shadow error model ------------------------------------------------

    def _has_active(self, slot: int) -> bool:
        act = self._act_off
        return act[slot + 1] > act[slot]

    def _track_fill(self, slot: int, salt: int) -> None:
        """Shadow ``errors.on_fill``; untracked no-op fills stay no-ops."""
        state = self._slot_state
        if self._has_active(slot):
            state[slot] = salt
        elif slot in state or self._errors.is_dirty(slot):
            state[slot] = -1

    def _track_clear(self, slot: int) -> None:
        state = self._slot_state
        if slot in state or self._errors.is_dirty(slot):
            state[slot] = -1

    def _row_of(self, slot: int, salt: int):
        """Predicted packed row of a shadow-FILLED slot (None = clean)."""
        key = (slot, salt)
        row = self._row_memo.get(key, _EMPTY)
        if row is _EMPTY:
            row = self._errors.predicted_fill_row(slot, salt)
            self._row_memo[key] = row
        return row

    def _is_dirty(self, slot: int) -> bool:
        salt = self._slot_state.get(slot)
        if salt is None:
            return self._errors.is_dirty(slot)
        if salt < 0:
            return False
        return self._row_of(slot, salt) is not None

    def _fast_clean(self, slot: int, value: int) -> bool:
        if self._is_dirty(slot):
            return False
        if value == _INI and self._iwt and self._fault_map.has_faults(slot):
            return not self._has_observable(slot)
        return True

    def _has_observable(self, slot: int) -> bool:
        salt = self._slot_state.get(slot)
        if salt is None:
            return self._errors.has_observable_faults(slot)
        if salt >= 0 and self._row_of(slot, salt) is not None:
            return True
        if not self._fault_map.has_faults(slot):
            return False
        return self._has_active(slot)

    def _sig(self, slot: int, segments: int, use_ecc: bool) -> Signals:
        salt = self._slot_state.get(slot)
        if salt is None:
            return self._errors.signals(slot, segments, use_ecc)
        if salt < 0:
            return _CLEAN_SIG
        row = self._row_of(slot, salt)
        if row is None:
            return _CLEAN_SIG
        key = (slot, salt, segments, use_ecc)
        sig = self._sig_memo.get(key)
        if sig is None:
            sig = Signals(
                *self._errors.kernel.signals_row(row, segments, use_ecc)
            )
            self._sig_memo[key] = sig
        return sig

    def _obs_signals(self, slot: int) -> Signals:
        segments = self._train_segs
        salt = self._slot_state.get(slot)
        if salt is None:
            return self._errors.observable_signals(slot, segments)
        row = None if salt < 0 else self._row_of(slot, salt)
        key = (slot, salt, segments, "obs")
        sig = self._sig_memo.get(key)
        if sig is None:
            observed = self._errors.predicted_observable_row(slot, row)
            if not observed.any():
                sig = _CLEAN_SIG
            else:
                sig = Signals(
                    *self._errors.kernel.signals_row(observed, segments, True)
                )
            self._sig_memo[key] = sig
        return sig

    def _signals(self, slot: int, value: int) -> Signals:
        if value == _INI:
            if self._iwt:
                return self._obs_signals(slot)
            return self._sig(slot, self._train_segs, True)
        if value == _S1:
            return self._sig(slot, self._stable_segs, True)
        return self._sig(slot, self._stable_segs, False)

    def _correction_sound(self, slot: int) -> bool:
        salt = self._slot_state.get(slot)
        if salt is None:
            return self._errors.correction_is_sound(slot)
        if salt < 0:
            return True
        row = self._row_of(slot, salt)
        if row is None:
            return True
        return self._errors.row_correction_is_sound(row)

    def _has_data_errors(self, slot: int) -> bool:
        salt = self._slot_state.get(slot)
        if salt is None:
            return self._errors.has_data_errors(slot)
        if salt < 0:
            return False
        row = self._row_of(slot, salt)
        if row is None:
            return False
        return self._errors.row_has_data_errors(row)

    # -- scheme semantics (mirrors KilliScheme / WriteThroughCache) --------

    def _uniform(self, st: _SetShadow, set_index: int) -> bool:
        if not self._prio_repl:
            return True
        return self._scheme._off_initial_in_set[set_index] + st.off_d == 0

    def _classify_hit(
        self, st: _SetShadow, set_index: int, way: int, slot: int, value: int
    ) -> int:
        """Full Table 2 read-hit path; returns 0 CLEAN, 1 CORRECTED,
        2 retrain miss, 3 disable miss (as `_apply_classification`)."""
        sig = self._signals(slot, value)
        cls = classify_cached(
            value, sig.sp_mismatches, sig.syndrome_zero, sig.global_parity_ok
        )
        nxt = int(cls.next_dfh)
        if cls.free_ecc_entry:
            # Before the transition: the triv-upgrade probe in
            # _set_dfh must see the freed entry.
            self._ecc_remove(set_index, way)
        self._set_dfh(st, slot, value, nxt)
        if cls.action is DfhAction.ERROR_MISS:
            self._ecc_remove(set_index, way)
            self._track_clear(slot)
            return 3 if nxt == _DIS else 2
        self._d_hits_served += 1
        if cls.action is DfhAction.CORRECT_AND_SEND:
            if not self._correction_sound(slot):
                self._d_sdc += 1
            self._d_ecc_corrections += 1
            if self._ecc_contains(set_index, way):
                self._ecc_touch(set_index, way)
            return 1
        if self._has_data_errors(slot):
            self._d_sdc += 1
        if (nxt == _INI or nxt == _S1) and self._ecc_contains(set_index, way):
            self._ecc_touch(set_index, way)
        return 0

    def _invalidate_line(self, st: _SetShadow, set_index: int, way: int) -> None:
        """Shadow ``cache.invalidate_line(..., reason="ecc_evict")``."""
        line = st.way_lines[way]
        if line < 0:
            return
        del st.resident[line]
        st.way_lines[way] = -1
        insort(st.free, way)
        self._d_invalidations += 1
        self._d_ecc_evict_inval += 1
        self._ecc_remove(set_index, way)
        self._track_clear(set_index * self._assoc + way)

    def _handle_ecc_eviction(self, set_index: int, way: int) -> None:
        st = self._sets.get(set_index)
        if st is None:
            st = self._materialize(set_index)
        # An entry pointed at this set, so it was never trivial; keep
        # the flag honest even if a future refactor relaxes that.
        st.triv = False
        slot = set_index * self._assoc + way
        value = st.dfh[way]
        if value == _S0:
            if self._has_data_errors(slot):
                self._d_sdc += 1
            self._invalidate_line(st, set_index, way)
            return
        if value != _INI and value != _S1:
            raise AssertionError("ECC entry existed for an unprotected line")
        if self._fast_clean(slot, value):
            self._set_dfh(st, slot, value, _S0)
            self._d_reclass_clean += 1
            return
        sig = self._signals(slot, value)
        cls = classify_cached(
            value, sig.sp_mismatches, sig.syndrome_zero, sig.global_parity_ok
        )
        nxt = int(cls.next_dfh)
        self._set_dfh(st, slot, value, nxt)
        if nxt == _S0:
            self._d_reclass_clean += 1
            return
        if nxt == _DIS:
            line = st.way_lines[way]
            if line >= 0:
                del st.resident[line]
                st.way_lines[way] = -1
            elif way in st.free:
                st.free.remove(way)
            st.disabled.add(way)
            st.new_disabled.add(way)
            self._d_evict_disables += 1
            self._track_clear(slot)
            return
        self._invalidate_line(st, set_index, way)

    def _on_evict(self, st: _SetShadow, set_index: int, way: int) -> None:
        slot = set_index * self._assoc + way
        value = st.dfh[way]
        # Remove before any transition so the triv-upgrade probe in
        # _set_dfh sees the freed entry.
        self._ecc_remove(set_index, way)
        if value == _INI and self._train_on_evict:
            if self._fast_clean(slot, value):
                self._set_dfh(st, slot, value, _S0)
            else:
                sig = self._signals(slot, value)
                cls = classify_cached(
                    value,
                    sig.sp_mismatches,
                    sig.syndrome_zero,
                    sig.global_parity_ok,
                )
                nxt = int(cls.next_dfh)
                self._set_dfh(st, slot, value, nxt)
                if nxt == _DIS:
                    line = st.way_lines[way]
                    del st.resident[line]
                    st.way_lines[way] = -1
                    st.disabled.add(way)
                    st.new_disabled.add(way)
        self._track_clear(slot)

    def _on_fill(self, st: _SetShadow, set_index: int, way: int, line: int) -> None:
        slot = set_index * self._assoc + way
        value = st.dfh[way]
        if value == _DIS:
            raise AssertionError("fill into a disabled line")
        self._track_fill(slot, line // self._n_sets)
        if value == _INI or value == _S1:
            evicted = self._ecc_insert(set_index, way)
            if evicted is not None:
                assoc = self._assoc
                self._handle_ecc_eviction(evicted // assoc, evicted % assoc)

    def _choose_victim(self, st: _SetShadow, set_index: int):
        resident = st.resident
        if not st.disabled:
            if len(resident) == self._assoc:
                return next(iter(resident.values())), True
            if self._uniform(st, set_index):
                return st.free[0], False
        elif len(st.disabled) == self._assoc:
            return None, False
        invalid = st.free  # invalid enabled ways, ascending (both branches)
        if invalid:
            if self._uniform(st, set_index):
                return invalid[0], False
            dfh_local = st.dfh
            prio = _PRIORITY
            best_way = invalid[0]
            best_p = -1
            for way in invalid:
                p = prio[dfh_local[way]]
                if p > best_p:  # first-max tie-break
                    best_p = p
                    best_way = way
                    if p == _PRIO_MAX:
                        break
            return best_way, False
        if not resident:
            return None, False
        return next(iter(resident.values())), True

    def _allocate(self, st: _SetShadow, set_index: int, line: int):
        for _ in range(self._assoc):
            victim, has_data = self._choose_victim(st, set_index)
            if victim is None:
                return None
            if has_data:
                self._d_evictions += 1
                self._on_evict(st, set_index, victim)
                if victim in st.disabled:
                    continue  # training disabled the victim: retry
                vline = st.way_lines[victim]
                del st.resident[vline]
                st.way_lines[victim] = -1
            else:
                st.free.remove(victim)
            st.way_lines[victim] = line
            st.resident[line] = victim
            self._d_fills += 1
            self._on_fill(st, set_index, victim, line)
            st.touched.add(victim)
            return victim
        return None

    # -- transaction driver ------------------------------------------------

    def run(self, cluster, idxs, start, lines, stores, lat, set_idx):
        """Interpret one cluster's subsequence from offset ``start``.

        ``idxs`` are the cluster's positions in the global residue (in
        original order); ``lines``/``stores``/``set_idx``/``lat`` are
        the global per-access arrays (``set_idx`` holds each access's
        precomputed L2 set index; ``lat`` receives each simulated
        access's latency).  Returns None when the subsequence was fully
        consumed or the offset of the first access that must run
        per-access (a shared-RNG write hit).  Either way the simulated
        prefix is committed before returning.
        """
        self._begin(cluster)
        n_sets = self._n_sets
        assoc = self._assoc
        sets = self._sets
        act = self._act_off
        pure = self._pure
        slot_state = self._slot_state
        slot_get = slot_state.get
        # The weights list is only ever rebuilt by clear_all, which
        # cannot run inside a transaction, so the identity is stable
        # here; the commit replays row events through the real model
        # only after the loop exits.
        weights = self._errors._weights
        row_of = self._row_of
        iwt = self._iwt
        fm_has_faults = self._fault_map.has_faults
        allocate = self._allocate
        materialize = self._materialize
        ecc_entries = self._ecc_entries
        ecc_assoc = self._ecc_assoc
        dfh_over = self._dfh_over
        trans = self._trans
        prio = _PRIORITY
        prio_repl = self._prio_repl
        off_init = self._scheme._off_initial_in_set
        uns_mv = self._scheme._unstable_in_set
        lat_hit = self._lat_hit
        lat_tag = self._lat_tag
        lat_miss = self._lat_miss
        lat_corrected = self._lat_hit_corrected
        lat_error = lat_hit + lat_miss
        # The hot counters accumulate in locals and flush on exit (all
        # deltas are additive, so helpers mutating the same self._d_*
        # fields compose with the flush).
        d_reads = d_read_hits = d_read_misses = d_mem_reads = 0
        d_writes = d_mem_writes = d_write_hits = d_write_misses = 0
        d_hits_served = pure_hits = d_fills = 0
        d_ecc_acc = d_ecc_alloc = d_ecc_evict = d_reclass = 0
        n = len(idxs)
        j = start
        while j < n:
            gi = idxs[j]
            line = lines[gi]
            set_index = set_idx[gi]
            try:
                st = sets[set_index]
            except KeyError:
                st = materialize(set_index)
            resident = st.resident
            way = resident.get(line)
            if st.triv:
                # Pure dict-LRU: no scheme dispatch, no row checks.
                if stores[gi]:
                    d_writes += 1
                    d_mem_writes += 1
                    if way is None:
                        d_write_misses += 1
                    else:
                        d_write_hits += 1
                        del resident[line]
                        resident[line] = way
                        st.touched.add(way)
                    lat[gi] = lat_tag
                elif way is not None:
                    d_reads += 1
                    d_read_hits += 1
                    d_hits_served += 1
                    del resident[line]
                    resident[line] = way
                    st.touched.add(way)
                    lat[gi] = lat_hit
                else:
                    d_reads += 1
                    d_read_misses += 1
                    d_mem_reads += 1
                    free = st.free
                    if free:
                        victim = free.pop(0)
                    elif resident:
                        vline, victim = next(iter(resident.items()))
                        self._d_evictions += 1
                        del resident[vline]
                    else:
                        self._d_bypasses += 1
                        lat[gi] = lat_miss
                        j += 1
                        continue
                    st.way_lines[victim] = line
                    resident[line] = victim
                    d_fills += 1
                    st.touched.add(victim)
                    lat[gi] = lat_miss
                j += 1
                continue
            if stores[gi]:
                if way is not None:
                    slot = set_index * assoc + way
                    if act[slot + 1] > act[slot]:
                        # Shared-RNG masking re-roll: cannot simulate.
                        # Commit the exact prefix and hand this access
                        # to the per-access path.
                        self._stale_slots[self._cluster] = slot
                        self._d_reads += d_reads
                        self._d_read_hits += d_read_hits + pure_hits
                        self._d_read_misses += d_read_misses
                        self._d_mem_reads += d_mem_reads
                        self._d_writes += d_writes
                        self._d_mem_writes += d_mem_writes
                        self._d_write_hits += d_write_hits
                        self._d_write_misses += d_write_misses
                        self._d_hits_served += d_hits_served + pure_hits
                        self._d_fills += d_fills
                        self._d_ecc_acc += d_ecc_acc
                        self._d_ecc_alloc += d_ecc_alloc
                        self._d_ecc_evict += d_ecc_evict
                        self._d_reclass_clean += d_reclass
                        self._commit()
                        return j
                    d_writes += 1
                    d_mem_writes += 1
                    d_write_hits += 1
                    if slot in slot_state or (
                        not pure[slot] and weights[slot]
                    ):
                        slot_state[slot] = -1
                    if slot in ecc_entries:
                        # _ecc_touch, inline.
                        d_ecc_acc += 1
                        ecc_entries.remove(slot)
                        ecc_entries.insert(0, slot)
                    del resident[line]
                    resident[line] = way
                    st.touched.add(way)
                else:
                    d_writes += 1
                    d_mem_writes += 1
                    d_write_misses += 1
                lat[gi] = lat_tag
                j += 1
                continue
            d_reads += 1
            if way is None:
                d_read_misses += 1
                d_mem_reads += 1
                free = st.free
                if free:
                    # Inline fill fast path: with an invalid enabled way
                    # available the victim always comes from ``free``
                    # (uniform -> lowest way, else the DFH-priority
                    # scan), never from an eviction — the slow
                    # _allocate path is only needed when the set is
                    # full or fully disabled.
                    if prio_repl and (off_init[set_index] + st.off_d) != 0:
                        dfh_local = st.dfh
                        victim = free[0]
                        best_p = -1
                        for w in free:
                            p = prio[dfh_local[w]]
                            if p > best_p:  # first-max tie-break
                                best_p = p
                                victim = w
                                if p == 2:  # _PRIO_MAX
                                    break
                        free.remove(victim)
                    else:
                        victim = free.pop(0)
                    st.way_lines[victim] = line
                    resident[line] = victim
                    d_fills += 1
                    slot = set_index * assoc + victim
                    value = st.dfh[victim]
                    # _on_fill, inline (a free way is never DISABLED).
                    if act[slot + 1] > act[slot]:
                        slot_state[slot] = line // n_sets
                    elif slot in slot_state or weights[slot]:
                        slot_state[slot] = -1
                    if value == _INI or value == _S1:
                        d_ecc_acc += 1
                        if slot in ecc_entries:
                            raise ValueError(
                                f"ECC entry for slot {slot} already present"
                            )
                        d_ecc_alloc += 1
                        if len(ecc_entries) >= ecc_assoc:
                            eslot = ecc_entries.pop()
                            d_ecc_evict += 1
                            ecc_entries.insert(0, slot)
                            es = eslot // assoc
                            ew = eslot - es * assoc
                            est = sets.get(es)
                            if est is None:
                                est = materialize(es)
                            est.triv = False
                            evalue = est.dfh[ew]
                            esalt = slot_get(eslot)
                            if esalt is None:
                                edirty = weights[eslot] != 0
                            elif esalt < 0:
                                edirty = False
                            else:
                                edirty = row_of(eslot, esalt) is not None
                            if (
                                edirty
                                or (evalue != _INI and evalue != _S1)
                                or (
                                    iwt
                                    and evalue == _INI
                                    and fm_has_faults(eslot)
                                )
                            ):
                                # Anything but the provably-clean
                                # reclassify goes through the full
                                # eviction handler.
                                self._handle_ecc_eviction(es, ew)
                            else:
                                # Clean INITIAL/STABLE_1 -> STABLE_0
                                # (_set_dfh + _fast_clean, inline).
                                pure[eslot] = 0
                                dfh_over[eslot] = _S0
                                est.dfh[ew] = _S0
                                if evalue == _INI:
                                    est.off_d += 1
                                est.uns_d -= 1
                                trans[evalue << 2] += 1
                                d_reclass += 1
                                if (
                                    est.quiet
                                    and not est.triv
                                    and uns_mv[es] + est.uns_d == 0
                                ):
                                    # Triv upgrade (see _set_dfh).
                                    ebase = eslot - ew
                                    estop = ebase + assoc
                                    for k2 in ecc_entries:
                                        if ebase <= k2 < estop:
                                            break
                                    else:
                                        est.triv = True
                        else:
                            ecc_entries.insert(0, slot)
                    st.touched.add(victim)
                    lat[gi] = lat_miss
                    j += 1
                    continue
                if allocate(st, set_index, line) is None:
                    self._d_bypasses += 1
                lat[gi] = lat_miss
                j += 1
                continue
            slot = set_index * assoc + way
            if pure[slot] and slot not in slot_state:
                # Pure hit: STABLE_0 on a really-clean untracked slot —
                # an LRU touch and nothing else.
                pure_hits += 1
                del resident[line]
                resident[line] = way
                st.touched.add(way)
                lat[gi] = lat_hit
                j += 1
                continue
            value = st.dfh[way]
            # _fast_clean, inline.
            salt = slot_get(slot)
            if salt is None:
                dirty = weights[slot] != 0
            elif salt < 0:
                dirty = False
            else:
                dirty = row_of(slot, salt) is not None
            if dirty:
                clean = False
            elif value != _INI or not iwt or not fm_has_faults(slot):
                clean = True
            else:
                clean = not self._has_observable(slot)
            if clean:
                if value != _S0:
                    # Remove before the transition so the triv-upgrade
                    # probe in _set_dfh sees the freed entry.
                    self._ecc_remove(set_index, way)
                    self._set_dfh(st, slot, value, _S0)
                # Shadow-clean and now STABLE_0; tracked slots are
                # still fenced off the pure path by the slot_state
                # guard until the commit fixup re-derives them.
                pure[slot] = 1
                d_hits_served += 1
                outcome = 0
            else:
                outcome = self._classify_hit(st, set_index, way, slot, value)
            if outcome == 0:
                d_read_hits += 1
                del resident[line]
                resident[line] = way
                st.touched.add(way)
                lat[gi] = lat_hit
            elif outcome == 1:
                d_read_hits += 1
                self._d_corrected += 1
                del resident[line]
                resident[line] = way
                st.touched.add(way)
                lat[gi] = lat_corrected
            else:
                self._d_error_misses += 1
                del resident[line]
                st.way_lines[way] = -1
                if outcome == 3:
                    st.disabled.add(way)
                    st.new_disabled.add(way)
                else:
                    insort(st.free, way)
                d_read_misses += 1
                d_mem_reads += 1
                if allocate(st, set_index, line) is None:
                    self._d_bypasses += 1
                lat[gi] = lat_error
            j += 1
        self._d_reads += d_reads
        self._d_read_hits += d_read_hits + pure_hits
        self._d_read_misses += d_read_misses
        self._d_mem_reads += d_mem_reads
        self._d_writes += d_writes
        self._d_mem_writes += d_mem_writes
        self._d_write_hits += d_write_hits
        self._d_write_misses += d_write_misses
        self._d_hits_served += d_hits_served + pure_hits
        self._d_fills += d_fills
        self._d_ecc_acc += d_ecc_acc
        self._d_ecc_alloc += d_ecc_alloc
        self._d_ecc_evict += d_ecc_evict
        self._d_reclass_clean += d_reclass
        self._commit()
        return None

    # -- commit ------------------------------------------------------------

    def _commit(self) -> None:
        if self._check_invariants and self._rng_mark is not None:
            state = repr(self._errors.rng.bit_generator.state)
            if state != self._rng_mark:
                raise InvariantError(
                    "[REPRO_CHECK_INVARIANTS] batched cluster simulation "
                    f"drew shared RNG (cluster {self._cluster}): the "
                    "interpreter window must be RNG-free — only the real "
                    "per-access path may consume the stream"
                )
        cache = self._cache
        tags = cache.tags
        lru = cache.lru
        stamp = cache._hit_stamp
        assoc = self._assoc
        line_bytes = self._line_bytes
        scheme = self._scheme
        off_mv = scheme._off_initial_in_set
        uns_mv = scheme._unstable_in_set
        dis_mv = scheme._dfh_disabled_in_set
        stamp_clear = [-1] * assoc
        for set_index, st in self._sets.items():
            way_lines = st.way_lines
            orig = st.orig
            new_disabled = st.new_disabled
            if new_disabled or way_lines != orig:
                # Pass 1: clear every changed way so a line that moved
                # between ways cannot have its index entry popped by the
                # overwrite-insert of its old way.
                for way in range(assoc):
                    if way in new_disabled:
                        tags.disable(set_index, way)
                    elif way_lines[way] != orig[way] and orig[way] >= 0:
                        tags.invalidate(set_index, way)
                for way in range(assoc):
                    line = way_lines[way]
                    if line >= 0 and line != orig[way]:
                        tags.insert(line * line_bytes, way)
            touched = st.touched
            if touched:
                # Final recency order; same convention as
                # apply_set_replay (ages differ in value, not order).
                for line, way in st.resident.items():
                    if way in touched:
                        lru.touch(set_index, way)
            base = set_index * assoc
            stamp[base : base + assoc] = stamp_clear
            if st.off_d:
                off_mv[set_index] += st.off_d
            if st.uns_d:
                uns_mv[set_index] += st.uns_d
            if st.dis_d:
                dis_mv[set_index] += st.dis_d
        if self._dfh_over:
            dfh_mv = self._dfh_mv
            for slot, value in self._dfh_over.items():
                dfh_mv[slot] = value
            trans_mv = scheme._transitions_mv
            for key, count in enumerate(self._trans):
                if count:
                    trans_mv[key >> 2, key & 3] += count
        # ECC cache: key-list writeback plus a membership diff for the
        # O(1) mirrors.
        ecc = self._ecc
        entries = ecc._sets[self._cluster]
        new_entries = [
            (key // assoc, key % assoc) for key in self._ecc_entries
        ]
        if entries != new_entries:
            if ecc._l2_assoc is not None:
                member = ecc._member
                count_for_set = ecc._count_for_set
                l2_assoc = ecc._l2_assoc
                old_keys = set(entries)
                new_keys = set(new_entries)
                for key_set, key_way in old_keys - new_keys:
                    member[key_set * l2_assoc + key_way] = False
                    count_for_set[key_set] -= 1
                for key_set, key_way in new_keys - old_keys:
                    member[key_set * l2_assoc + key_way] = True
                    count_for_set[key_set] += 1
            entries[:] = new_entries
        ecc.accesses += self._d_ecc_acc
        ecc.allocations += self._d_ecc_alloc
        ecc.evictions += self._d_ecc_evict
        # Error rows: replay the last event per slot through the real
        # model (fills are salt-keyed and idempotent).
        errors = self._errors
        for slot, salt in self._slot_state.items():
            if salt < 0:
                errors.clear(slot)
            else:
                errors.on_fill(slot, salt)
        # Purity fixup: re-derive the bitmap for exactly the slots
        # whose DFH or error rows this transaction changed, from the
        # now-committed real state.
        pure = self._pure
        dfh_mv = self._dfh_mv
        is_dirty = errors.is_dirty
        for slot in self._dfh_over:
            pure[slot] = 1 if dfh_mv[slot] == _S0 and not is_dirty(slot) else 0
        for slot in self._slot_state:
            pure[slot] = 1 if dfh_mv[slot] == _S0 and not is_dirty(slot) else 0
        stats = cache.stats
        stats.reads += self._d_reads
        stats.read_hits += self._d_read_hits
        stats.read_misses += self._d_read_misses
        stats.writes += self._d_writes
        stats.write_hits += self._d_write_hits
        stats.write_misses += self._d_write_misses
        stats.evictions += self._d_evictions
        stats.fills += self._d_fills
        stats.bypasses += self._d_bypasses
        stats.error_induced_misses += self._d_error_misses
        stats.corrected_reads += self._d_corrected
        stats.invalidations += self._d_invalidations
        stats.ecc_evict_invalidations += self._d_ecc_evict_inval
        if self._d_ecc_corrections:
            stats.bump("ecc_corrections", self._d_ecc_corrections)
        if self._d_reclass_clean:
            stats.bump("ecc_evict_reclassified_clean", self._d_reclass_clean)
        if self._d_evict_disables:
            stats.bump("ecc_evict_disables", self._d_evict_disables)
        cache.memory_reads += self._d_mem_reads
        cache.memory_writes += self._d_mem_writes
        scheme.hits_served += self._d_hits_served
        scheme.sdc_events += self._d_sdc
        if self._check_invariants:
            for set_index in self._sets:
                check_set_invariants(cache, set_index)
