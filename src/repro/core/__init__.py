"""The Killi mechanism (the paper's primary contribution).

- :mod:`repro.core.config` — Killi configuration (ECC-cache ratio,
  segment counts, policy ablation switches).
- :mod:`repro.core.dfh` — the Detected-Fault-History state machine:
  a faithful implementation of the paper's Table 2, including the
  missing-combination handling documented inline.
- :mod:`repro.core.layout` — the LV-resident bit layout of a protected
  line (data, segmented parity, SECDED checkbits).
- :mod:`repro.core.linestate` — per-line *effective error vector*
  tracking: unmasked persistent faults plus accumulated soft errors,
  and the (segmented parity, syndrome, global parity) signals derived
  from them.
- :mod:`repro.core.ecc_cache` — the small set-associative ECC cache
  holding checkbits + extra parity for lines in DFH b'01 / b'10.
- :mod:`repro.core.killi` — :class:`KilliScheme`, the protection scheme
  that plugs the above into the write-through cache.
- :mod:`repro.core.datapath` — the bit-accurate data path (real
  512-bit contents, real encoders/decoders) used to cross-validate the
  sparse error-vector model.
"""

from repro.core.config import KilliConfig
from repro.core.datapath import BitAccurateDataPath
from repro.core.dfh import (
    Dfh,
    DfhAction,
    classify,
    classify_b00,
    classify_b01,
    classify_b10,
)
from repro.core.ecc_cache import EccCache
from repro.core.killi import KilliScheme
from repro.core.layout import LineLayout
from repro.core.linestate import LineErrorModel, Signals
from repro.core.scrubber import Scrubber
from repro.core.strong import KilliStrongScheme
from repro.core.writeback import KilliWriteBackScheme

__all__ = [
    "KilliConfig",
    "Dfh",
    "DfhAction",
    "classify",
    "classify_b00",
    "classify_b01",
    "classify_b10",
    "LineLayout",
    "LineErrorModel",
    "Signals",
    "EccCache",
    "KilliScheme",
    "KilliStrongScheme",
    "Scrubber",
    "KilliWriteBackScheme",
    "BitAccurateDataPath",
]
