"""Killi with stronger ECC in the ECC cache (paper Sections 5.2 / 5.5).

The paper's Vmin-lowering option: keep Killi's structure — 16-bit
parity during training, 4-bit parity afterwards, on-demand checkbits
in the ECC cache — but store a stronger code (DECTED, or OLSC for the
Table 7 study) in the entry, enabling lines with up to ``t`` faults
instead of one.  DECTED is free (its 21 checkbits fit in the 23-bit
field the 12 freed parity bits leave behind); OLSC costs area per
Table 7 but buys MS-ECC-class capacity at 0.600/0.575xVDD with a
fraction of MS-ECC's storage.

Classification semantics generalise naturally: DFH b'10 now means
"1..t faults, protected by the strong code"; lines with more than
``t`` faults are disabled.  The implementation classifies from the
line's observable codeword error count (the strong code's syndrome
machinery can count errors up to its detection budget; the codes
themselves are implemented bit-for-bit in :mod:`repro.ecc` and their
budgets are enforced there).
"""

from __future__ import annotations

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.hooks import AccessOutcome
from repro.core.config import KilliConfig
from repro.core.dfh import Dfh
from repro.core.killi import KilliScheme
from repro.ecc.registry import correction_capability
from repro.faults.fault_map import FaultMap

__all__ = ["KilliStrongScheme"]


class KilliStrongScheme(KilliScheme):
    """Killi whose ECC cache stores a ``t``-error-correcting code.

    Parameters
    ----------
    code:
        Registry name of the ECC-cache code ("dected", "tecqed",
        "6ec7ed", "olsc-t11", ...).  Sets the per-line fault budget.
    (remaining parameters as :class:`KilliScheme`)
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        fault_map: FaultMap,
        voltage: float,
        config: KilliConfig | None = None,
        rng: np.random.Generator | None = None,
        code: str = "dected",
        soft_injector=None,
    ):
        super().__init__(geometry, fault_map, voltage, config, rng, soft_injector)
        self.code = code
        self.correct_t = correction_capability(code)

    # -- classification ----------------------------------------------------

    def _codeword_error_count(self, line_id: int) -> int:
        """Errors the strong code sees (data + checkbit regions)."""
        layout = self.layout
        return sum(
            1
            for offset in self.errors.error_positions(line_id)
            if layout.is_data(offset) or layout.is_checkbit(offset)
        )

    def _parity_only_mismatch(self, line_id: int, n_segments: int) -> bool:
        """Any parity-bit-only error visible at this configuration?"""
        layout = self.layout
        return any(
            layout.is_parity(offset)
            and layout.parity_index(offset) < n_segments
            for offset in self.errors.error_positions(line_id)
        )

    def on_read_hit(self, set_index: int, way: int) -> AccessOutcome:
        line_id = self._line_id(set_index, way)
        if self.soft_injector is not None:
            offsets = self.soft_injector.sample_event(self.layout.total_bits)
            if offsets is not None:
                self.errors.add_soft_error(line_id, offsets)
        dfh = self._dfh(line_id)

        if dfh is Dfh.STABLE_0:
            # Parity-only protection.  Unlike base Killi (which
            # disables on a multi-segment mismatch, Table 2 row 3), a
            # strong-code variant re-enters training on *any* detected
            # error: the stronger code may well still protect the line
            # (e.g. 2 faults under DECTED), so permanent disabling
            # would throw capacity away.
            if not self.errors.is_dirty(line_id):
                self.hits_served += 1
                return AccessOutcome.CLEAN
            signals = self.errors.signals(
                line_id, self.config.stable_segments, use_ecc=False
            )
            if signals.sp_mismatches == 0:
                if self.errors.has_data_errors(line_id):
                    self.sdc_events += 1
                self.hits_served += 1
                return AccessOutcome.CLEAN
            self._set_dfh(line_id, dfh, Dfh.INITIAL)
            self.errors.clear(line_id)
            return AccessOutcome.RETRAIN_MISS

        if not self.errors.is_dirty(line_id):
            if dfh in (Dfh.INITIAL, Dfh.STABLE_1):
                self._set_dfh(line_id, dfh, Dfh.STABLE_0)
                self.ecc.remove(set_index, way)
            self.hits_served += 1
            return AccessOutcome.CLEAN

        count = self._codeword_error_count(line_id)
        if count == 0:
            # Only parity bits are wrong: treat as the stuck-parity
            # case — keep strong protection.
            self._set_dfh(line_id, dfh, Dfh.STABLE_1)
            self.hits_served += 1
            if self.ecc.contains(set_index, way):
                self.ecc.touch(set_index, way)
            return AccessOutcome.CLEAN
        if count <= self.correct_t:
            self._set_dfh(line_id, dfh, Dfh.STABLE_1)
            self.hits_served += 1
            if self.ecc.contains(set_index, way):
                self.ecc.touch(set_index, way)
            if self.cache is not None:
                self.cache.stats.bump("ecc_corrections")
            return AccessOutcome.CORRECTED
        # Beyond the budget: disable.
        self._set_dfh(line_id, dfh, Dfh.DISABLED)
        self.ecc.remove(set_index, way)
        self.errors.clear(line_id)
        return AccessOutcome.DISABLE_MISS

    def on_evict(self, set_index: int, way: int) -> None:
        line_id = self._line_id(set_index, way)
        dfh = self._dfh(line_id)
        if dfh is Dfh.INITIAL and self.config.train_on_evict:
            count = self._codeword_error_count(line_id)
            if count == 0 and not self._parity_only_mismatch(
                line_id, self.config.training_segments
            ):
                self._set_dfh(line_id, dfh, Dfh.STABLE_0)
            elif count <= self.correct_t:
                self._set_dfh(line_id, dfh, Dfh.STABLE_1)
            else:
                self._set_dfh(line_id, dfh, Dfh.DISABLED)
                self.cache.tags.disable(set_index, way)
        self.ecc.remove(set_index, way)
        self.errors.clear(line_id)

    def _handle_ecc_eviction(self, set_index: int, way: int) -> None:
        line_id = self._line_id(set_index, way)
        dfh = self._dfh(line_id)
        if dfh not in (Dfh.INITIAL, Dfh.STABLE_1):
            raise AssertionError("ECC entry existed for an unprotected line")
        count = self._codeword_error_count(line_id)
        if count == 0 and not self._parity_only_mismatch(
            line_id, self.config.training_segments
        ):
            self._set_dfh(line_id, dfh, Dfh.STABLE_0)
            self.cache.stats.bump("ecc_evict_reclassified_clean")
            return
        if count > self.correct_t:
            self._set_dfh(line_id, dfh, Dfh.DISABLED)
            self.cache.tags.disable(set_index, way)
            self.cache.lru.demote(set_index, way)
            self.cache.stats.bump("ecc_evict_disables")
            self.errors.clear(line_id)
            return
        self._set_dfh(line_id, dfh, Dfh.STABLE_1)
        self.cache.invalidate_line(set_index, way, reason="ecc_evict")
