"""Killi configuration.

Collects every knob the paper sweeps or calls out as a design choice,
so experiments and ablations are driven from one place.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["KilliConfig"]


@dataclass(frozen=True)
class KilliConfig:
    """Configuration of the Killi mechanism.

    Parameters
    ----------
    ecc_ratio:
        L2 lines per ECC-cache line; the paper sweeps
        {256, 128, 64, 32, 16} (written "1:256" .. "1:16").
    ecc_assoc:
        ECC cache associativity (Table 3: 4).
    training_segments:
        Parity segments while a line is in DFH b'01 (paper: 16, each
        32 bits wide).
    stable_segments:
        Parity segments for stable lines (paper: 4, each 128 bits).
    train_on_evict:
        Paper Section 4.4: classify b'01 lines when they are evicted,
        not only on hits.  Ablation switch.
    priority_replacement:
        Paper Section 4.4: prefer filling invalid lines in DFH order
        b'01 > b'00 > b'10.  Ablation switch.
    lv_faults_in_ecc_cache:
        Whether the checkbits / extra parity stored in the ECC cache
        are themselves subject to LV faults.  The paper's analytic
        model assumes checkbits can fail; default True.
    inverted_write_training:
        Paper Section 5.6.2's masked-fault mitigation: training
        verifies both the original and the inverted data image, so
        every active fault is observed regardless of masking (a stuck
        cell disagrees with exactly one of the two polarities).
        Eliminates masked-fault SDCs at the cost of an extra write +
        read per training classification.
    interleaved_parity:
        Paper Section 4.1: interleave parity segments so adjacent
        multi-bit soft errors land in different segments.  Ablation
        switch (False = contiguous segments).
    """

    ecc_ratio: int = 64
    ecc_assoc: int = 4
    training_segments: int = 16
    stable_segments: int = 4
    train_on_evict: bool = True
    priority_replacement: bool = True
    lv_faults_in_ecc_cache: bool = True
    inverted_write_training: bool = False
    interleaved_parity: bool = True

    def __post_init__(self):
        if self.ecc_ratio < 1:
            raise ValueError("ecc_ratio must be >= 1")
        if self.ecc_assoc < 1:
            raise ValueError("ecc_assoc must be >= 1")
        if self.training_segments % self.stable_segments:
            raise ValueError(
                "training_segments must be a multiple of stable_segments"
            )

    def ecc_entries(self, n_l2_lines: int) -> int:
        """Number of ECC-cache entries for a given L2 size."""
        entries = n_l2_lines // self.ecc_ratio
        return max(entries, self.ecc_assoc)
