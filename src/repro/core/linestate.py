"""Per-line effective error vectors and the signals derived from them.

The simulator does not materialise 512-bit line contents.  Because all
of Killi's codes (segmented parity, SECDED) are *linear*, every signal
the controller sees — which parity segments mismatch, whether the
syndrome is zero, whether the global parity matches — depends only on
the **error vector** between what was written and what reads back, not
on the data value itself.

For a persistent stuck-at fault the error bit is set iff the stuck
value differs from the written bit, which for random write data is a
fair coin ("masked fault" when the coin lands on equal).  So:

- on every fill / write-through update of a line, the model resamples
  which of the line's active faults are *unmasked*;
- between writes the effective vector is stable, so repeated reads are
  deterministic — exactly the persistence property the paper exploits;
- soft errors XOR extra positions into the vector.

Error vectors are stored as **packed uint64 bitmask rows** in one
preallocated ``(n_lines, words)`` matrix; deriving the signals for a
read is then a handful of masked popcounts against the precomputed
tables of :class:`repro.kernels.LineSignalKernel` (and, because the
vector only changes on fills/writes/soft errors, repeated reads hit a
per-line memo).  The scalar set-walking path survives as
:meth:`LineErrorModel.signals_for_positions` — the pinned reference
the equivalence tests compare the packed path against.

This is exact with respect to the bit-accurate data path (see
:mod:`repro.core.datapath`, cross-validated in the test suite) and
keeps the per-access cost tiny: a fault-free line never touches any of
this machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.layout import LineLayout
from repro.ecc.secded import SecDedCode
from repro.faults.fault_map import FaultMap
from repro.kernels.classify import LineSignalKernel
from repro.utils.bitpack import n_words, pack_positions, popcount64, unpack_positions

__all__ = ["Signals", "LineErrorModel"]


@dataclass(frozen=True)
class Signals:
    """The three controller-visible signals of paper Table 2."""

    sp_mismatches: int
    """Number of parity segments with a mismatch (0, 1, 2+)."""

    syndrome_zero: bool
    """SECDED syndrome is zero."""

    global_parity_ok: bool
    """SECDED global parity matches."""

    data_error_bits: int = 0
    """Ground truth (not controller-visible): flipped *data* bits.
    Used by the harness to count silent data corruptions."""


#: Signals of a line with no effective errors.
_CLEAN = Signals(0, True, True, 0)


class LineErrorModel:
    """Tracks effective error vectors for every line of a cache.

    Parameters
    ----------
    fault_map:
        Persistent stuck-at faults (one entry per physical line id).
    voltage:
        Normalized operating voltage of the LV array.
    rng:
        Stream for the masking coin flips.
    layout:
        LV bit layout.
    lv_faults_in_ecc_cache:
        If False, bits stored in the ECC cache (parity bits 4..15 and
        all checkbits) are considered fault-free (the ECC cache runs at
        nominal voltage); if True (default) they fail like everything
        else, matching the paper's analytic model.
    interleaved_parity:
        Segment mapping: interleaved (bit i -> segment i mod n, the
        paper's choice, so adjacent soft-error bursts spread across
        segments) or contiguous (bit i -> segment i div width, the
        ablation).
    """

    def __init__(
        self,
        fault_map: FaultMap,
        voltage: float,
        rng: np.random.Generator,
        layout: LineLayout | None = None,
        lv_faults_in_ecc_cache: bool = True,
        interleaved_parity: bool = True,
    ):
        self.fault_map = fault_map
        # CSR view (offsets list + positions array) of the faults
        # active at the operating voltage — pure in the voltage, so
        # built lazily and dropped by the voltage setter.  The fill
        # path probes two offsets to detect the (dominant) "no active
        # faults" case without touching any numpy machinery.
        self._act_offsets = None
        self._act_positions = None
        self.voltage = voltage
        self.rng = rng
        self.layout = layout if layout is not None else LineLayout()
        self.lv_faults_in_ecc_cache = lv_faults_in_ecc_cache
        self.interleaved_parity = interleaved_parity
        if fault_map.line_bits < self.layout.total_bits:
            raise ValueError(
                f"fault map covers {fault_map.line_bits} bits/line; layout "
                f"needs {self.layout.total_bits}"
            )
        self._secded = SecDedCode(self.layout.data_bits)
        self.kernel = LineSignalKernel(
            self.layout, self._secded, interleaved=interleaved_parity
        )
        self._words = n_words(self.layout.total_bits)
        # Packed effective error vectors, one row per physical line,
        # plus the cached row weight (popcount) for the dirty check.
        self._rows = np.zeros((fault_map.n_lines, self._words), dtype=np.uint64)
        # Row weights live in a plain list: the hot fill/read paths do
        # scalar probes per access, where list indexing beats a numpy
        # scalar read severalfold.
        self._weights = [0] * fault_map.n_lines
        # Read signals are pure in the row: memoise per line until the
        # next mutation (reads vastly outnumber writes).
        # line_id -> {(n_segments, use_ecc) | (n_segments, "observable"): Signals}
        self._signal_cache: dict = {}
        # Called on *external* error-vector edits (set_effective /
        # add_soft_error) so an owning scheme can invalidate memoized
        # hit outcomes; wired up by the scheme's attach().
        self.external_mutation_hook = None
        # LV offset of the boundary below which bits are always resident
        # in the (LV) main cache: data + the 4 stable parity bits.
        self._cache_resident_stop = self.layout.parity_offset + 4

    @property
    def voltage(self) -> float:
        """Operating point; assigning a new one drops the fault memo."""
        return self._voltage

    @voltage.setter
    def voltage(self, value: float) -> None:
        self._voltage = value
        self._act_offsets = None
        self._act_positions = None

    # -- state updates ----------------------------------------------------

    def is_dirty(self, line_id: int) -> bool:
        """Fast check: does the line have a non-empty error vector?"""
        return self._weights[line_id] != 0

    #: Probability that a write-through update toggles the masking
    #: state of each individual fault (new data at that bit position).
    mask_flip_probability = 0.1

    def _ensure_active(self) -> list:
        """Build the active-fault CSR for the current voltage."""
        offsets, positions, _ = self.fault_map._active_csr(self._voltage)
        if not self.lv_faults_in_ecc_cache:
            # Bits resident in the (nominal-voltage) ECC cache never
            # fail: filter them out once and rebuild the offsets.
            counts = np.diff(np.asarray(offsets))
            line_of = np.repeat(np.arange(len(counts)), counts)
            keep = positions < self._cache_resident_stop
            positions = positions[keep]
            counts = np.bincount(line_of[keep], minlength=len(counts))
            offsets = [0] * (len(counts) + 1)
            np.cumsum(counts, out=counts)
            offsets[1:] = counts.tolist()
        self._act_offsets = offsets
        self._act_positions = positions
        return offsets

    def _active_positions(self, line_id: int) -> np.ndarray:
        offsets = self._act_offsets
        if offsets is None:
            offsets = self._ensure_active()
        return self._act_positions[offsets[line_id] : offsets[line_id + 1]]

    def _active_mask(self, line_id: int) -> np.ndarray:
        """Packed mask of the line's active faults (cached in the map)."""
        if self.lv_faults_in_ecc_cache:
            return self.fault_map.packed_line_faults(
                line_id, self.voltage, self.layout.total_bits
            )
        return pack_positions(
            self._active_positions(line_id), self.layout.total_bits
        )

    @staticmethod
    def _masking_coins(line_id: int, salt: int, positions: np.ndarray) -> np.ndarray:
        """Deterministic fair coins per (line, data identity, fault).

        A stuck-at cell is *masked* exactly when the written bit equals
        its stuck value.  Data contents are identified by ``salt`` (the
        cache tag): refilling the same address reinstalls the same
        data, so the same faults are masked again — the property that
        lets Killi's classification stabilise on read-mostly data.
        """
        mask64 = (1 << 64) - 1
        x = positions.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        x ^= np.uint64((line_id * 0xBF58476D1CE4E5B9) & mask64)
        x ^= np.uint64(((salt + 1) * 0x94D049BB133111EB) & mask64)
        # splitmix64 finalizer
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
        return ((x >> np.uint64(13)) & np.uint64(1)).astype(bool)

    def _store_row(self, line_id: int, row: np.ndarray) -> None:
        self._rows[line_id] = row
        self._weights[line_id] = int(popcount64(row).sum())
        self._signal_cache.pop(line_id, None)

    def _clear_row(self, line_id: int) -> None:
        # Weight zero implies the row is already all-zero and the
        # signal cache holds (at most) "observable" entries, which are
        # pure in (line, voltage) and stay correct across a clear.
        if self._weights[line_id]:
            self._rows[line_id] = 0
            self._weights[line_id] = 0
            self._signal_cache.pop(line_id, None)

    def on_fill(self, line_id: int, salt: int = 0) -> None:
        """New data (identified by ``salt``) installed into the line.

        Unmasked faults are determined by the deterministic coins;
        accumulated soft errors are overwritten.
        """
        offsets = self._act_offsets
        if offsets is None:
            offsets = self._ensure_active()
        start = offsets[line_id]
        if start == offsets[line_id + 1]:
            self._clear_row(line_id)
            return
        positions = self._act_positions[start : offsets[line_id + 1]]
        unmasked = positions[self._masking_coins(line_id, salt, positions)]
        self._store_row(
            line_id, pack_positions(unmasked, self.layout.total_bits)
        )

    def slot_has_active(self, line_id: int) -> bool:
        """Any active LV faults in this physical slot at the current
        voltage?  (True means ``on_write_hit`` would draw shared RNG
        and ``on_fill`` would roll the masking coins.)"""
        offsets = self._act_offsets
        if offsets is None:
            offsets = self._ensure_active()
        return offsets[line_id] != offsets[line_id + 1]

    def fill_would_be_clean(self, line_id: int, salt: int = 0) -> bool:
        """Would :meth:`on_fill` leave this slot's error vector empty?

        Pure prediction — evaluates the same deterministic masking
        coins ``on_fill`` uses (fills never touch the shared RNG) and
        mutates nothing.  Must stay in lockstep with ``on_fill``.
        """
        offsets = self._act_offsets
        if offsets is None:
            offsets = self._ensure_active()
        start = offsets[line_id]
        stop = offsets[line_id + 1]
        if start == stop:
            return True
        positions = self._act_positions[start:stop]
        return not self._masking_coins(line_id, salt, positions).any()

    @staticmethod
    def _masking_coins_many(
        line_ids: np.ndarray, salts: np.ndarray, positions: np.ndarray
    ) -> np.ndarray:
        """Elementwise :meth:`_masking_coins` over aligned arrays.

        Same splitmix64 mix per element — ``uint64`` multiplies wrap
        exactly like the scalar path's ``& mask64``.
        """
        x = positions.astype(np.uint64) * np.uint64(0x9E3779B97F4A7C15)
        x ^= line_ids.astype(np.uint64) * np.uint64(0xBF58476D1CE4E5B9)
        x ^= (salts.astype(np.uint64) + np.uint64(1)) * np.uint64(
            0x94D049BB133111EB
        )
        x ^= x >> np.uint64(30)
        x *= np.uint64(0xBF58476D1CE4E5B9)
        x ^= x >> np.uint64(27)
        x *= np.uint64(0x94D049BB133111EB)
        x ^= x >> np.uint64(31)
        return ((x >> np.uint64(13)) & np.uint64(1)).astype(bool)

    def fills_would_be_clean(self, line_ids, salts) -> np.ndarray:
        """Batched :meth:`fill_would_be_clean` over aligned arrays.

        One vectorized coin evaluation for a whole replay window's
        candidate fills instead of a Python call per (slot, line)
        pair.  Returns a bool array: True where ``on_fill(line_ids[i],
        salts[i])`` would leave an empty error vector.
        """
        offsets = self._act_offsets
        if offsets is None:
            offsets = self._ensure_active()
        line_ids = np.asarray(line_ids, dtype=np.int64)
        salts = np.asarray(salts, dtype=np.int64)
        off = np.asarray(offsets, dtype=np.int64)
        starts = off[line_ids]
        counts = off[line_ids + 1] - starts
        clean = np.ones(len(line_ids), dtype=bool)
        faulted = np.flatnonzero(counts)
        if not len(faulted):
            return clean
        reps = counts[faulted]
        # Concatenated per-pair aranges into the active-position CSR.
        flat = np.arange(int(reps.sum()), dtype=np.int64)
        flat -= np.repeat(np.cumsum(reps) - reps, reps)
        positions = self._act_positions[np.repeat(starts[faulted], reps) + flat]
        coins = self._masking_coins_many(
            np.repeat(line_ids[faulted], reps),
            np.repeat(salts[faulted], reps),
            positions,
        )
        unmasked = np.zeros(len(faulted), dtype=bool)
        np.logical_or.at(unmasked, np.repeat(np.arange(len(faulted)), reps), coins)
        clean[faulted] = ~unmasked
        return clean

    def predicted_fill_row(self, line_id: int, salt: int):
        """The packed row :meth:`on_fill` *would* store, or None if empty.

        Pure, deterministic-coin prediction for the batched replay
        interpreter: lets a replay classify hypothetically-filled
        lines without mutating the model (the commit replays
        ``on_fill`` with the same salt, reproducing this row exactly).
        """
        offsets = self._act_offsets
        if offsets is None:
            offsets = self._ensure_active()
        start = offsets[line_id]
        stop = offsets[line_id + 1]
        if start == stop:
            return None
        positions = self._act_positions[start:stop]
        unmasked = positions[self._masking_coins(line_id, salt, positions)]
        if not len(unmasked):
            return None
        return pack_positions(unmasked, self.layout.total_bits)

    def predicted_observable_row(self, line_id: int, row) -> np.ndarray:
        """Observable (original + inverted image) vector for a stored row.

        ``row`` is a packed vector or None (empty); the result ORs in
        every active fault, mirroring :meth:`observable_signals` for a
        hypothetical fill.
        """
        mask = self._active_mask(line_id)
        return mask if row is None else row | mask

    def on_write_hit(self, line_id: int) -> None:
        """Write-through update of resident data.

        Each fault's masking state toggles independently with
        ``mask_flip_probability`` (the store changed the bit at the
        faulty position); soft errors are overwritten.
        """
        offsets = self._act_offsets
        if offsets is None:
            offsets = self._ensure_active()
        start = offsets[line_id]
        stop = offsets[line_id + 1]
        if start == stop:
            # No active faults: nothing persists and the overwrite
            # drops any accumulated soft errors.
            self._clear_row(line_id)
            return
        positions = self._act_positions[start:stop]
        row = self._rows[line_id] & self._active_mask(line_id)  # soft errors overwritten
        toggles = self.rng.random(len(positions)) < self.mask_flip_probability
        row = row ^ pack_positions(positions[toggles], self.layout.total_bits)
        self._store_row(line_id, row)

    def set_effective(self, line_id: int, offsets) -> None:
        """Directly install an effective error vector (testing hook).

        Used by the cross-validation tests to mirror a bit-accurate
        data path's observed error vector into the sparse model.
        """
        offsets = {int(o) for o in offsets}
        for offset in offsets:
            if not 0 <= offset < self.layout.total_bits:
                raise IndexError(f"offset {offset} outside the line layout")
        self._store_row(
            line_id, pack_positions(sorted(offsets), self.layout.total_bits)
        )
        if self.external_mutation_hook is not None:
            self.external_mutation_hook()

    def add_soft_error(self, line_id: int, offsets) -> None:
        """XOR transient bit flips into the line's error vector."""
        row = self._rows[line_id].copy()
        for offset in offsets:
            offset = int(offset)
            if not 0 <= offset < self.layout.total_bits:
                raise IndexError(f"offset {offset} outside the line layout")
            row[offset >> 6] ^= np.uint64(1) << np.uint64(offset & 63)
        self._store_row(line_id, row)
        if self.external_mutation_hook is not None:
            self.external_mutation_hook()

    def clear(self, line_id: int) -> None:
        """Forget the line's error state (invalidation)."""
        self._clear_row(line_id)

    def clear_all(self) -> None:
        self._rows[:] = 0
        self._weights = [0] * len(self._weights)
        self._signal_cache.clear()

    # -- signal computation -------------------------------------------------

    def error_positions(self, line_id: int) -> frozenset:
        """The current effective error vector (LV offsets)."""
        if not self._weights[line_id]:
            return frozenset()
        return frozenset(unpack_positions(self._rows[line_id]).tolist())

    def signals(self, line_id: int, n_segments: int, use_ecc: bool) -> Signals:
        """Controller-visible signals for a read of ``line_id``.

        ``n_segments`` selects the parity configuration in use (16
        during training, 4 afterwards); ``use_ecc`` is False for DFH
        b'00 lines whose ECC-cache entry has been freed.
        """
        if not self._weights[line_id]:
            return _CLEAN
        per_line = self._signal_cache.setdefault(line_id, {})
        key = (n_segments, use_ecc)
        cached = per_line.get(key)
        if cached is not None:
            return cached
        signals = Signals(
            *self.kernel.signals_row(self._rows[line_id], n_segments, use_ecc)
        )
        per_line[key] = signals
        return signals

    def dirty_in_range(self, start: int, stop: int) -> bool:
        """Any line in ``[start, stop)`` with a non-empty error vector?

        Set-level probe for the batched replay engine: a scheme-inert
        set must have every resident line's effective vector empty.
        """
        return any(self._weights[start:stop])

    def active_faults_in_range(self, start: int, stop: int) -> bool:
        """Any *active* LV fault (masked or not) in lines ``[start, stop)``?

        O(1) via the active-fault CSR of the current voltage: lines
        without active faults can never grow an error vector from their
        own fills or write hits, which is what lets the batched engine
        skip the per-access error-model calls for them.
        """
        offsets = self._act_offsets
        if offsets is None:
            offsets = self._ensure_active()
        return offsets[stop] > offsets[start]

    def has_observable_faults(self, line_id: int) -> bool:
        """Would the inverted-write read pair observe any fault?

        Cheap form of ``observable_fault_positions(line_id) != set()``:
        true when the effective vector is non-empty or the line has
        active (possibly masked) faults.
        """
        if self._weights[line_id]:
            return True
        if not self.fault_map.has_faults(line_id):
            return False
        return len(self._active_positions(line_id)) > 0

    def observable_fault_positions(self, line_id: int) -> set:
        """All positions the inverted-write flow observes.

        Reading both the original and the inverted image exposes every
        active fault (a stuck cell disagrees with exactly one
        polarity) in addition to whatever soft errors are present.
        """
        positions = set(unpack_positions(self._rows[line_id]).tolist())
        active = self._active_positions(line_id)
        positions.update(int(p) for p in active)
        return positions

    def observable_signals(self, line_id: int, n_segments: int) -> Signals:
        """Signals of the inverted-write observation (packed fast path).

        Equivalent to ``signals_for_positions(
        observable_fault_positions(line_id), n_segments, use_ecc=True)``
        but evaluated as packed-row popcounts: the observed vector is
        the effective row OR-ed with the cached active-fault mask.
        Memoised like :meth:`signals` (the active mask only changes
        with the voltage, which resets the whole model).
        """
        per_line = self._signal_cache.setdefault(line_id, {})
        key = (n_segments, "observable")
        cached = per_line.get(key)
        if cached is not None:
            return cached
        row = self._rows[line_id] | self._active_mask(line_id)
        if not row.any():
            signals = _CLEAN
        else:
            signals = Signals(*self.kernel.signals_row(row, n_segments, True))
        per_line[key] = signals
        return signals

    def signals_for_positions(
        self, effective, n_segments: int, use_ecc: bool
    ) -> Signals:
        """Signals produced by an explicit error vector.

        This is the scalar reference implementation — it walks the
        sparse offset set one position at a time.  The packed kernel
        path (:meth:`signals`, :meth:`observable_signals`) is pinned
        bit-identical to it by the equivalence tests.
        """
        if not effective:
            return _CLEAN
        layout = self.layout

        # Segmented parity: a segment mismatches iff an odd number of
        # its bits (data members + its own parity bit) flipped.
        segment_flips = {}
        data_errors = 0
        codeword_flips = []
        segment_width = layout.data_bits // n_segments
        for offset in effective:
            if layout.is_data(offset):
                if self.interleaved_parity:
                    segment = offset % n_segments
                else:
                    segment = offset // segment_width
                segment_flips[segment] = segment_flips.get(segment, 0) + 1
                data_errors += 1
                codeword_flips.append(offset)
            elif layout.is_parity(offset):
                index = layout.parity_index(offset)
                if index < n_segments:
                    segment_flips[index] = segment_flips.get(index, 0) + 1
            else:  # checkbit region
                if use_ecc:
                    codeword_flips.append(layout.codeword_position(offset))
        sp_mismatches = sum(1 for count in segment_flips.values() if count & 1)

        if not use_ecc:
            return Signals(sp_mismatches, True, True, data_errors)
        syndrome = self._secded.syndrome_of_error_positions(codeword_flips)
        global_parity_ok = (len(codeword_flips) & 1) == 0
        return Signals(sp_mismatches, syndrome == 0, global_parity_ok, data_errors)

    def correction_is_sound(self, line_id: int, use_ecc: bool = True) -> bool:
        """Would SECDED's single-error correction restore the true data?

        True iff the codeword error vector has weight exactly one (the
        decoder then flips precisely that bit).  When the controller
        issues CORRECT_AND_SEND on a heavier vector the result is a
        silent data corruption, which the harness counts.
        """
        if not self._weights[line_id]:
            return True
        return self.row_correction_is_sound(self._rows[line_id], use_ecc)

    def row_correction_is_sound(self, row: np.ndarray, use_ecc: bool = True) -> bool:
        """:meth:`correction_is_sound` for an explicit packed row."""
        kernel = self.kernel
        mask = kernel.codeword_mask if use_ecc else kernel.data_mask
        codeword_weight = int(popcount64(row & mask).sum())
        if codeword_weight == 1:
            return True
        # Heavier vectors: sound only if no *data* bit is wrong after
        # the decoder's (mis)correction; conservatively require that
        # no data bits are flipped at all.
        return int(popcount64(row & kernel.data_mask).sum()) == 0

    def has_data_errors(self, line_id: int) -> bool:
        """Ground truth: does the line currently return corrupt data bits?"""
        if not self._weights[line_id]:
            return False
        return self.row_has_data_errors(self._rows[line_id])

    def row_has_data_errors(self, row: np.ndarray) -> bool:
        """:meth:`has_data_errors` for an explicit packed row."""
        return bool(popcount64(row & self.kernel.data_mask).any())
