"""Killi protection scheme (paper Section 4).

Glues together the DFH state machine (Table 2), the per-line error
model, and the ECC cache into a :class:`repro.cache.ProtectionScheme`
that the write-through L2 drives.  Responsibilities:

- **Fill** — resample unmasked faults for the new contents; lines in
  DFH b'01 / b'10 allocate an ECC-cache entry, possibly evicting (and
  thereby invalidating) another L2 line's entry — the contention
  mechanism behind Figure 4/5's sensitivity to ECC-cache size.
- **Read hit** — derive the (segmented parity, syndrome, global
  parity) signals, classify per Table 2, update DFH, and translate the
  action to a cache outcome (clean hit / corrected hit / error-induced
  miss that invalidates or disables the line).
- **Eviction** — optional training: b'01 lines are classified from
  their evicted contents (Section 4.4), so DFH warmup does not require
  a hit.
- **Victim priority** — invalid lines are filled in DFH order
  b'01 > b'00 > b'10 (Section 4.4).
- **Reset** — voltage change / reboot clears all DFH bits back to
  b'01 and flushes the ECC cache (Section 2.4: Killi relearns the
  fault population of the new voltage).
"""

from __future__ import annotations

import numpy as np

from repro.cache.geometry import CacheGeometry
from repro.cache.hooks import AccessOutcome, ProtectionScheme, make_replay_guard
from repro.core.config import KilliConfig
from repro.core.dfh import Classification, Dfh, DfhAction, classify
from repro.core.ecc_cache import EccCache
from repro.core.layout import LineLayout
from repro.core.linestate import LineErrorModel
from repro.faults.fault_map import FaultMap
from repro.faults.soft_errors import SoftErrorInjector

__all__ = ["KilliScheme"]

# Plain-int DFH values and names for the hot paths (IntEnum lookups
# and constructions are an order of magnitude slower than int compares).
_STABLE_0 = int(Dfh.STABLE_0)
_INITIAL = int(Dfh.INITIAL)
_STABLE_1 = int(Dfh.STABLE_1)
_DISABLED = int(Dfh.DISABLED)
_NAMES = tuple(Dfh(v).name for v in range(4))


class KilliScheme(ProtectionScheme):
    """The Killi mechanism as a cache protection scheme.

    Parameters
    ----------
    geometry:
        Geometry of the protected L2.
    fault_map:
        Persistent LV fault map covering ``geometry.n_lines`` lines of
        :class:`~repro.core.layout.LineLayout` width.
    voltage:
        Normalized LV operating point of the data array.
    config:
        Killi knobs (ECC-cache ratio, segments, policy switches).
    rng:
        Stream for fault-masking coin flips.
    soft_injector:
        Optional transient-error injector exercised on read hits.
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        fault_map: FaultMap,
        voltage: float,
        config: KilliConfig | None = None,
        rng: np.random.Generator | None = None,
        soft_injector: SoftErrorInjector | None = None,
    ):
        super().__init__()
        self.geometry = geometry
        self.config = config if config is not None else KilliConfig()
        self.voltage = voltage
        self.layout = LineLayout(data_bits=geometry.line_bits)
        self.errors = LineErrorModel(
            fault_map,
            voltage,
            rng if rng is not None else np.random.default_rng(0),
            layout=self.layout,
            lv_faults_in_ecc_cache=self.config.lv_faults_in_ecc_cache,
            interleaved_parity=self.config.interleaved_parity,
        )
        self.ecc = EccCache(
            self.config.ecc_entries(geometry.n_lines),
            self.config.ecc_assoc,
            l2_shape=(geometry.n_sets, geometry.associativity),
        )
        self.soft_injector = soft_injector
        self._assoc = geometry.associativity
        # DFH states live in a flat int8 array so vectorized consumers
        # (histograms, the batched classification kernel) can read them
        # wholesale.  Scalar probes/writes — every access path — go
        # through a memoryview over the same buffer: plain-int results
        # at list-indexing speed, where numpy scalar access is
        # severalfold slower.  Entries are always plain ints (0..3).
        self._dfh_np = np.full(geometry.n_lines, _INITIAL, dtype=np.int8)
        self.dfh = memoryview(self._dfh_np)
        # Per-set DFH occupancy counters, maintained incrementally by
        # _set_dfh so the set-inertness probes are O(1):
        # - off-initial: lines in a state other than INITIAL (0 means
        #   every way still carries the same fill priority);
        # - unstable: lines in INITIAL or STABLE_1 (0 means every way
        #   is STABLE_0 or DISABLED — the stabilised-set condition);
        # - disabled: lines in DISABLED.
        self._off_initial_np = np.zeros(geometry.n_sets, dtype=np.int32)
        self._off_initial_in_set = memoryview(self._off_initial_np)
        self._unstable_np = np.full(geometry.n_sets, self._assoc, np.int32)
        self._unstable_in_set = memoryview(self._unstable_np)
        self._dfh_disabled_np = np.zeros(geometry.n_sets, dtype=np.int32)
        self._dfh_disabled_in_set = memoryview(self._dfh_disabled_np)
        # Transition counters as a dense 4x4 (old, new) array; the
        # dict-of-name-tuples shape tests and the harness consume is a
        # property view built on demand.
        self._transitions_np = np.zeros((4, 4), dtype=np.int64)
        self._transitions_mv = memoryview(self._transitions_np)
        self.sdc_events = 0
        self.hits_served = 0
        self._interp = None

    def attach(self, cache) -> None:
        super().attach(cache)
        # External error injections (tests, campaigns) must invalidate
        # the cache's memoized hit outcomes.
        self.errors.external_mutation_hook = cache.bump_epoch

    # -- internals ---------------------------------------------------------

    #: fill priority per DFH value (paper 4.4: b'01 > b'00 > b'10).
    _PRIORITY = (1, 2, 0, 0)

    def _line_id(self, set_index: int, way: int) -> int:
        return set_index * self._assoc + way

    def _dfh(self, line_id: int) -> Dfh:
        return Dfh(int(self.dfh[line_id]))

    def _fast_clean(self, line_id: int, dfh: int) -> bool:
        """May classification trivially conclude "no errors"?

        False when the error vector is non-empty, or when inverted
        write training is on and the line has real (possibly masked)
        faults that the inverted read pair would expose.  ``dfh``
        compares as an int (plain value or IntEnum both work).
        """
        if self.errors.is_dirty(line_id):
            return False
        if (
            dfh == _INITIAL
            and self.config.inverted_write_training
            and self.errors.fault_map.has_faults(line_id)
        ):
            return not self.errors.has_observable_faults(line_id)
        return True

    def _signals(self, line_id: int, dfh: Dfh):
        if dfh is Dfh.INITIAL:
            if self.config.inverted_write_training:
                # Section 5.6.2: the original+inverted read pair
                # observes every active fault, masked or not.
                return self.errors.observable_signals(
                    line_id, self.config.training_segments
                )
            return self.errors.signals(
                line_id, self.config.training_segments, use_ecc=True
            )
        if dfh is Dfh.STABLE_1:
            return self.errors.signals(
                line_id, self.config.stable_segments, use_ecc=True
            )
        return self.errors.signals(
            line_id, self.config.stable_segments, use_ecc=False
        )

    def _set_dfh(self, line_id: int, old: int, new: int) -> None:
        # old/new compare and index as ints (IntEnum callers included).
        if old == new:
            return
        old = int(old)
        new = int(new)
        self.dfh[line_id] = new
        set_index = line_id // self._assoc
        if old == _INITIAL:
            self._off_initial_in_set[set_index] += 1
        elif new == _INITIAL:
            self._off_initial_in_set[set_index] -= 1
        if (old == _INITIAL or old == _STABLE_1) != (
            new == _INITIAL or new == _STABLE_1
        ):
            self._unstable_in_set[set_index] += (
                1 if (new == _INITIAL or new == _STABLE_1) else -1
            )
        if old == _DISABLED:
            self._dfh_disabled_in_set[set_index] -= 1
        elif new == _DISABLED:
            self._dfh_disabled_in_set[set_index] += 1
        self._transitions_mv[old, new] += 1
        if self.cache is not None:
            # A DFH transition changes this line's classification
            # behaviour: invalidate the memoized hits of its own set.
            # Memoized outcomes elsewhere in the L2 are untouched by a
            # single line retraining, so they stay valid.
            self.cache.bump_set_epoch(set_index)

    def _apply_classification(
        self, set_index: int, way: int, line_id: int, old: Dfh, cls: Classification
    ) -> AccessOutcome:
        """Commit a Table 2 classification and map it to a cache outcome."""
        self._set_dfh(line_id, old, cls.next_dfh)
        if cls.free_ecc_entry:
            self.ecc.remove(set_index, way)

        if cls.action is DfhAction.ERROR_MISS:
            # The cache will invalidate or disable the line; drop our
            # per-content state now (the tag store won't call back).
            self.ecc.remove(set_index, way)
            self.errors.clear(line_id)
            if cls.next_dfh is Dfh.DISABLED:
                return AccessOutcome.DISABLE_MISS
            return AccessOutcome.RETRAIN_MISS

        self.hits_served += 1
        if cls.action is DfhAction.CORRECT_AND_SEND:
            if not self.errors.correction_is_sound(line_id):
                self.sdc_events += 1
            if self.cache is not None:
                self.cache.stats.bump("ecc_corrections")
            # The line still needs its checkbits: promote the entry.
            if self.ecc.contains(set_index, way):
                self.ecc.touch(set_index, way)
            return AccessOutcome.CORRECTED

        # SEND_CLEAN: ground-truth corrupt data slipping through is an SDC
        # (e.g. masked multi-bit faults that unmask in the same segment).
        if self.errors.has_data_errors(line_id):
            self.sdc_events += 1
        if cls.next_dfh in (Dfh.INITIAL, Dfh.STABLE_1) and self.ecc.contains(
            set_index, way
        ):
            self.ecc.touch(set_index, way)
        return AccessOutcome.CLEAN

    # -- ProtectionScheme hooks ---------------------------------------------

    def on_fill(self, set_index: int, way: int) -> None:
        line_id = set_index * self._assoc + way
        value = self.dfh[line_id]
        if value == _DISABLED:
            raise AssertionError("fill into a disabled line")
        tag = self.cache.tags.tag_at(set_index, way)
        self.errors.on_fill(line_id, salt=tag)
        if value == _INITIAL or value == _STABLE_1:
            evicted = self.ecc.insert(set_index, way)
            if evicted is not None:
                self._handle_ecc_eviction(*evicted)

    def _handle_ecc_eviction(self, set_index: int, way: int) -> None:
        """An L2 line just lost its ECC-cache entry to contention.

        The departing entry still holds the line's checkbits, so the
        controller classifies the line on the way out (the same
        hardware path as eviction training).  Lines found fault-free
        transition to b'00 and stay resident — this is the paper's
        "as cache lines are accessed or evicted, Killi discovers lines
        with no errors ... reducing the number of cache misses due to
        ECC cache evictions".  Lines that still need checkbits cannot
        remain protected and are invalidated; lines with multi-bit
        errors are disabled.
        """
        line_id = self._line_id(set_index, way)
        value = int(self.dfh[line_id])
        if value == _STABLE_0:
            # Only the write-back variant protects b'00 (dirty) lines.
            # Losing the checkbits leaves the dirty data parity-only;
            # write it back now (invalidate_line handles the
            # write-back) so a later fault cannot lose it.
            if self.errors.has_data_errors(line_id):
                self.sdc_events += 1  # corrupt dirty data written back
            self.cache.invalidate_line(set_index, way, reason="ecc_evict")
            return
        if value not in (_INITIAL, _STABLE_1):
            raise AssertionError("ECC entry existed for an unprotected line")
        if self._fast_clean(line_id, value):
            # Clean signals classify straight to b'00; line stays valid.
            self._set_dfh(line_id, value, _STABLE_0)
            self.cache.stats.bump("ecc_evict_reclassified_clean")
            return
        dfh = Dfh(value)
        signals = self._signals(line_id, dfh)
        cls = classify(
            dfh,
            signals.sp_mismatches,
            signals.syndrome_zero,
            signals.global_parity_ok,
        )
        self._set_dfh(line_id, dfh, cls.next_dfh)
        if cls.next_dfh is Dfh.STABLE_0:
            # Fault-free: 4-bit parity suffices; the line stays valid.
            self.cache.stats.bump("ecc_evict_reclassified_clean")
            return
        if cls.next_dfh is Dfh.DISABLED:
            self.cache.tags.disable(set_index, way)
            self.cache.lru.demote(set_index, way)
            self.cache.stats.bump("ecc_evict_disables")
            self.errors.clear(line_id)
            return
        # Still needs SECDED (b'01 unresolved or b'10): unprotected
        # data cannot stay resident.
        self.cache.invalidate_line(set_index, way, reason="ecc_evict")

    def on_read_hit(self, set_index: int, way: int) -> AccessOutcome:
        line_id = set_index * self._assoc + way
        if self.soft_injector is not None:
            offsets = self.soft_injector.sample_event(self.layout.total_bits)
            if offsets is not None:
                self.errors.add_soft_error(line_id, offsets)
        else:
            # Fast paths for lines whose classification is trivially
            # clean — by far the most common case.  Clean signals
            # classify b'00 as-is and b'01 / b'10 back to b'00
            # (freeing the ECC entry), exactly what the full Table 2
            # path would do.
            value = self.dfh[line_id]
            if self._fast_clean(line_id, value):
                if value == _STABLE_0:
                    self.hits_served += 1
                    return AccessOutcome.CLEAN
                if value == _INITIAL or value == _STABLE_1:
                    self._set_dfh(line_id, value, _STABLE_0)
                    self.ecc.remove(set_index, way)
                    self.hits_served += 1
                    return AccessOutcome.CLEAN
        dfh = self._dfh(line_id)
        signals = self._signals(line_id, dfh)
        cls = classify(
            dfh,
            signals.sp_mismatches,
            signals.syndrome_zero,
            signals.global_parity_ok,
        )
        return self._apply_classification(set_index, way, line_id, dfh, cls)

    def hit_replay_info(self, set_index: int, way: int):
        """Memoize steady-state b'00 hits (the common case after warmup).

        A STABLE_0 line has no ECC entry and classifies with 4-bit
        parity only; with no soft-error injector its signals — and thus
        the outcome (always CLEAN here, else we would not be asked) and
        the stat deltas — are fixed until the line's contents change
        (fill / write hit, which clear the stamp) or a DFH transition
        bumps the epoch.  Other DFH states touch the ECC cache on hits
        and must take the full path.
        """
        if self.soft_injector is not None:
            return None
        line_id = self._line_id(set_index, way)
        if int(self.dfh[line_id]) != _STABLE_0:
            return None
        # Replays of the SEND_CLEAN path: masked corrupt data slipping
        # through is an SDC on every hit (matches _apply_classification).
        sdc = (
            1
            if self.errors.is_dirty(line_id)
            and self.errors.has_data_errors(line_id)
            else 0
        )
        return (False, 1, sdc)

    def apply_replay(self, info) -> None:
        self.hits_served += info[1]
        self.sdc_events += info[2]

    def set_replay_info(self, set_index: int):
        """Scheme-inert probe: every way stable-clean and uncoupled.

        A set qualifies when all of its lines are DFH b'00 with an
        empty error vector, no *active* LV faults at the current
        voltage, and no ECC-cache entry.  Such a set is inert for the
        rest of the kernel:

        - hits take the b'00 fast-clean path (``hits_served += 1``,
          CLEAN, no epoch/ECC traffic) — the returned tuple;
        - fills keep DFH b'00 (no ECC insert) and resample nothing
          (no active faults -> ``errors.on_fill`` clears an already
          empty row without consuming RNG);
        - write hits likewise touch neither RNG nor ECC state;
        - evictions train nothing (b'00 is not b'01) and remove no
          entry;
        - fill priorities are uniform (every way b'00) so victim
          selection is first-invalid / plain LRU;
        - no entries means no other set's ECC contention can reach in,
          and its own accesses never create entries, faults or DFH
          transitions — the condition is monotone within a kernel.
        """
        if self.soft_injector is not None:
            return None
        # All-STABLE_0 <=> no unstable (b'01/b'10) and no disabled way:
        # two O(1) counter probes instead of a slice compare.
        if self._unstable_in_set[set_index] or self._dfh_disabled_in_set[
            set_index
        ]:
            return None
        base = set_index * self._assoc
        stop = base + self._assoc
        errors = self.errors
        if errors.active_faults_in_range(base, stop):
            return None
        if errors.dirty_in_range(base, stop):
            return None
        if self.ecc.has_entries_for(set_index):
            return None
        return (False, 1, 0)

    def apply_replay_bulk(self, info, count: int) -> None:
        self.hits_served += info[1] * count
        self.sdc_events += info[2] * count

    def set_replay_profile(self, set_index: int):
        """Guarded batched replay for stabilised sets.

        Looser than :meth:`set_replay_info`: ways may be DISABLED
        (inert — their state was cleared at disable time and the tag
        store never offers them again) and lines may sit over *active*
        LV faults, as long as every enabled way is DFH b'00, no error
        vector is non-empty and no ECC-cache entry exists.  Hits then
        all take the b'00 fast-clean path and evictions train nothing.

        The two events such a set cannot replay out of order are
        guarded instead of forbidden:

        - a write hit on a line with active faults re-rolls masking
          with the *shared* RNG (``unsafe_ways`` -> kernel abort);
        - a fill whose deterministic masking coins leave unmasked
          faults would store a non-empty error vector, breaking the
          fast-clean invariant (batched ``fills_ok`` check -> kernel
          abort at the first such fill).  Fills are RNG-free, so
          predicting them with ``fills_would_be_clean`` is exact; the
          salt replicates ``on_fill``'s (the cache tag,
          ``line // n_sets``).

        Aborted replays are discarded wholesale; the per-access path
        then consumes the prefix plus the aborting access.
        """
        if self.soft_injector is not None:
            return None
        # Stabilised <=> no way in b'01/b'10: one O(1) counter probe.
        # DISABLED ways are allowed here, unlike set_replay_info (they
        # are inert — cleared at disable time and never offered again).
        if self._unstable_in_set[set_index]:
            return None
        base = set_index * self._assoc
        stop = base + self._assoc
        errors = self.errors
        if errors.dirty_in_range(base, stop):
            return None
        if self.ecc.has_entries_for(set_index):
            return None
        if not errors.active_faults_in_range(base, stop):
            return ((False, 1, 0), None, None)
        dfh = self.dfh
        unsafe = frozenset(
            way
            for way in range(self._assoc)
            if dfh[base + way] == _STABLE_0
            and errors.slot_has_active(base + way)
        )
        n_sets = self.geometry.n_sets

        def fill_ok(way: int, line: int) -> bool:
            return errors.fill_would_be_clean(base + way, line // n_sets)

        def fills_ok(ways, line_nos) -> np.ndarray:
            slots = base + np.asarray(ways, dtype=np.int64)
            salts = np.asarray(line_nos, dtype=np.int64) // n_sets
            return errors.fills_would_be_clean(slots, salts)

        return ((False, 1, 0), None, make_replay_guard(unsafe, fill_ok, fills_ok))

    def batch_interpreter(self, cache):
        """Cluster-exact shadow interpreter for the batched engine.

        Unlike the guarded set replay above, the interpreter
        (:class:`repro.core.killi_replay.KilliClusterInterpreter`)
        handles *every* set — DFH warmup, classification and ECC-cache
        contention included — aborting only at shared-RNG write hits.
        Gated to exactly this class (subclasses may change semantics
        the interpreter replicates) and to runs without a soft-error
        injector (whose per-hit sampling draws shared RNG).
        """
        if type(self) is not KilliScheme:
            return None
        if self.soft_injector is not None:
            return None
        if cache is not self.cache:
            return None
        if self._interp is None:
            from repro.core.killi_replay import KilliClusterInterpreter

            self._interp = KilliClusterInterpreter(self, cache)
        self._interp.begin_kernel()
        return self._interp

    def on_write_hit(self, set_index: int, way: int) -> None:
        line_id = set_index * self._assoc + way
        self.errors.on_write_hit(line_id)
        if self.ecc.contains(set_index, way):
            # New checkbits were generated and stored: promote.
            self.ecc.touch(set_index, way)

    def on_evict(self, set_index: int, way: int) -> None:
        line_id = set_index * self._assoc + way
        value = self.dfh[line_id]
        if value == _INITIAL and self.config.train_on_evict:
            # Section 4.4: classify the evicted contents so training
            # progresses without waiting for a hit.
            dfh = Dfh.INITIAL
            if self._fast_clean(line_id, value):
                self._set_dfh(line_id, value, _STABLE_0)
            else:
                signals = self._signals(line_id, dfh)
                cls = classify(
                    dfh,
                    signals.sp_mismatches,
                    signals.syndrome_zero,
                    signals.global_parity_ok,
                )
                self._set_dfh(line_id, dfh, cls.next_dfh)
                if cls.next_dfh is Dfh.DISABLED:
                    self.cache.tags.disable(set_index, way)
        self.ecc.remove(set_index, way)
        self.errors.clear(line_id)

    def on_invalidated(self, set_index: int, way: int) -> None:
        line_id = self._line_id(set_index, way)
        self.ecc.remove(set_index, way)
        self.errors.clear(line_id)

    def fill_priority(self, set_index: int, way: int) -> int:
        if not self.config.priority_replacement:
            return 0
        line_id = set_index * self.geometry.associativity + way
        return self._PRIORITY[int(self.dfh[line_id])]

    def fill_priorities(self, set_index: int, ways) -> list:
        if not self.config.priority_replacement:
            return [0] * len(ways)
        base = set_index * self._assoc
        dfh = self.dfh[base : base + self._assoc]
        prio = self._PRIORITY
        return [prio[dfh[way]] for way in ways]

    def fill_priority_is_uniform(self, set_index: int) -> bool:
        if not self.config.priority_replacement:
            return True
        return self._off_initial_in_set[set_index] == 0

    def on_reset(self) -> None:
        self._dfh_np[:] = _INITIAL
        self._off_initial_np[:] = 0
        self._unstable_np[:] = self._assoc
        self._dfh_disabled_np[:] = 0
        self.ecc.clear()
        self.errors.clear_all()

    def change_voltage(self, voltage: float) -> None:
        """Move the LV array to a new operating point (paper Sec 2.4).

        Flushes the cache, resets every DFH bit to b'01 and relearns
        the (different) fault population of the new voltage — Killi's
        replacement for re-running MBIST.  Previously disabled lines
        become available again (faults are monotonic, so raising the
        voltage can only shrink the fault population).
        """
        if voltage < self.errors.fault_map.floor_voltage:
            raise ValueError(
                f"voltage {voltage} below the fault map floor "
                f"{self.errors.fault_map.floor_voltage}"
            )
        self.voltage = voltage
        self.errors.voltage = voltage
        self.cache.reset()  # invalidates, re-enables, calls on_reset

    # -- diagnostics ----------------------------------------------------------

    @property
    def transitions(self) -> dict:
        """DFH transition counts as ``{(old_name, new_name): count}``.

        A dict view over the dense 4x4 counter array; only transitions
        that occurred appear as keys (matching the historical
        dict-of-tuples accounting).
        """
        t = self._transitions_np
        return {
            (_NAMES[old], _NAMES[new]): int(t[old, new])
            for old in range(4)
            for new in range(4)
            if t[old, new]
        }

    def dfh_histogram(self) -> dict:
        """Count of lines per DFH state."""
        counts = np.bincount(self._dfh_np, minlength=4)
        return {Dfh(v).name: int(c) for v, c in enumerate(counts) if c}

    def disabled_fraction(self) -> float:
        """Fraction of all lines currently in DFH b'11."""
        n = len(self._dfh_np)
        return int(np.count_nonzero(self._dfh_np == _DISABLED)) / n
