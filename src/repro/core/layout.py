"""LV-resident bit layout of a Killi-protected line.

All bits that live in low-voltage SRAM for one cache line, in a single
fault-map coordinate space::

    offset   0 ............ 511 | 512 ....... 527 | 528 ........... 538
             data (512)         | parity (16)     | SECDED checkbits(11)

- The first ``stable_segments`` (4) parity bits are resident in the
  main cache; the remaining 12 live in the ECC cache and are only used
  while the line is in DFH b'01 (training).
- The 11 checkbits (10 Hamming + 1 global parity, stored in the ECC
  cache) protect the 523-bit codeword = data + checkbits.

The layout also maps LV offsets into SECDED codeword positions so the
sparse error-vector model can compute syndromes directly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["LineLayout"]


@dataclass(frozen=True)
class LineLayout:
    """Bit layout of the LV-resident state of one line."""

    data_bits: int = 512
    max_parity_bits: int = 16
    check_bits: int = 11

    @property
    def parity_offset(self) -> int:
        """First parity-bit offset."""
        return self.data_bits

    @property
    def check_offset(self) -> int:
        """First checkbit offset."""
        return self.data_bits + self.max_parity_bits

    @property
    def total_bits(self) -> int:
        """All LV bits per line (539 for the paper configuration)."""
        return self.data_bits + self.max_parity_bits + self.check_bits

    @property
    def gparity_offset(self) -> int:
        """LV offset of the SECDED global-parity checkbit."""
        return self.check_offset + self.check_bits - 1

    @property
    def codeword_bits(self) -> int:
        """SECDED codeword length (data + checkbits)."""
        return self.data_bits + self.check_bits

    def is_data(self, offset: int) -> bool:
        return 0 <= offset < self.data_bits

    def is_parity(self, offset: int) -> bool:
        return self.parity_offset <= offset < self.check_offset

    def is_checkbit(self, offset: int) -> bool:
        return self.check_offset <= offset < self.total_bits

    def parity_index(self, offset: int) -> int:
        """Which parity bit (0..15) an LV parity offset holds."""
        if not self.is_parity(offset):
            raise ValueError(f"offset {offset} is not in the parity region")
        return offset - self.parity_offset

    def codeword_position(self, offset: int) -> int | None:
        """SECDED codeword position for an LV offset (None for parity bits)."""
        if self.is_data(offset):
            return offset
        if self.is_checkbit(offset):
            return self.data_bits + (offset - self.check_offset)
        return None
