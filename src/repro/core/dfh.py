"""The Detected-Fault-History (DFH) state machine — paper Table 2.

Every cache line carries 2 DFH bits stored in the (nominal-voltage)
tag array:

=====  =======  ============  ==================================
DFH    state    errors/line   protection
=====  =======  ============  ==================================
b'00   stable   0             4-bit parity
b'01   initial  unknown       16-bit parity + SECDED ECC
b'10   stable   1             4-bit parity + SECDED ECC
b'11   stable   2 or more     none — line disabled
=====  =======  ============  ==================================

The classification functions below map the three hardware signals —
segmented-parity mismatch count (0 / 1 / >=2), SECDED syndrome
(zero / non-zero) and global parity (match / mismatch) — to the next
DFH state and the action the cache controller must take.  They encode
the paper's Table 2 rows verbatim; the handful of (signal) combinations
Table 2 leaves out are resolved conservatively and documented inline.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

__all__ = [
    "Dfh",
    "DfhAction",
    "Classification",
    "classify_b00",
    "classify_b01",
    "classify_b10",
    "classify",
    "classify_cached",
    "classify_batch",
    "ACTION_SEND_CLEAN",
    "ACTION_CORRECT_AND_SEND",
    "ACTION_ERROR_MISS",
    "CLASSIFY_NEXT",
    "CLASSIFY_ACTION",
    "CLASSIFY_FREE",
]


class Dfh(enum.IntEnum):
    """DFH encodings (values match the paper's bit patterns)."""

    STABLE_0 = 0b00
    """Stable, zero LV faults: 4-bit parity only."""

    INITIAL = 0b01
    """Unknown fault count: 16-bit parity + SECDED."""

    STABLE_1 = 0b10
    """Stable, one LV fault: 4-bit parity + SECDED."""

    DISABLED = 0b11
    """Two or more LV faults: line disabled until DFH reset."""


class DfhAction(enum.Enum):
    """Controller action accompanying a DFH classification."""

    SEND_CLEAN = "send_clean"
    """Serve the data as-is."""

    CORRECT_AND_SEND = "correct_and_send"
    """Correct with the ECC-cache checkbits, then serve."""

    ERROR_MISS = "error_miss"
    """Signal an error-induced cache miss; invalidate (or disable) the
    line and trigger a new load request."""


@dataclass(frozen=True)
class Classification:
    """(next DFH state, action, whether the ECC entry can be freed)."""

    next_dfh: Dfh
    action: DfhAction
    free_ecc_entry: bool = False


def classify_b00(sp_mismatches: int) -> Classification:
    """Table 2, DFH b'00 rows: only 4-bit segmented parity is checked.

    - no mismatch: clean;
    - one mismatching segment: a 1-bit error was discovered after
      training — the initial classification was wrong; invalidate and
      re-enter training (b'01);
    - two or more mismatching segments: multi-bit error; disable.
    """
    if sp_mismatches == 0:
        return Classification(Dfh.STABLE_0, DfhAction.SEND_CLEAN)
    if sp_mismatches == 1:
        return Classification(Dfh.INITIAL, DfhAction.ERROR_MISS)
    return Classification(Dfh.DISABLED, DfhAction.ERROR_MISS)


def classify_b01(
    sp_mismatches: int, syndrome_zero: bool, global_parity_ok: bool
) -> Classification:
    """Table 2, DFH b'01 rows: 16-bit parity + SECDED classify the line.

    Paper rows:

    - (ok, ok, ok)            -> b'00, free ECC entry, send clean;
    - (1 seg, non-zero, bad)  -> b'10, correct and send;
    - (ok or 2+, non-zero, ok)-> b'11, error miss  [multi-bit];
    - (2+, any, ok)           -> b'11, error miss  [even # errors];
    - (2+, any, bad)          -> b'11, error miss  [odd multi-bit].

    Combinations Table 2 omits, resolved here:

    - (ok, zero, bad): only the global-parity checkbit flipped — a
      single LV fault in the checkbits; treat like the 1-bit-error row
      (b'10, correctable).
    - (ok, non-zero, bad): single-bit error in the ECC checkbits
      (invisible to data parity); b'10, correctable.
    - (1 seg, zero, ok): a stuck parity *bit* (data provably clean
      since the syndrome is zero).  The line has one LV fault; keep it
      protected (b'10) and serve the clean data.
    - (1 seg, zero, bad) and (1 seg, non-zero, ok): inconsistent
      signals imply >= 2 faults; disable.
    """
    if sp_mismatches >= 2:
        return Classification(Dfh.DISABLED, DfhAction.ERROR_MISS, free_ecc_entry=True)

    if sp_mismatches == 0:
        if syndrome_zero and global_parity_ok:
            return Classification(
                Dfh.STABLE_0, DfhAction.SEND_CLEAN, free_ecc_entry=True
            )
        if syndrome_zero and not global_parity_ok:
            return Classification(Dfh.STABLE_1, DfhAction.CORRECT_AND_SEND)
        if not global_parity_ok:
            return Classification(Dfh.STABLE_1, DfhAction.CORRECT_AND_SEND)
        # syndrome non-zero, parity ok: even number of errors >= 2.
        return Classification(Dfh.DISABLED, DfhAction.ERROR_MISS, free_ecc_entry=True)

    # Exactly one mismatching segment.
    if not syndrome_zero and not global_parity_ok:
        return Classification(Dfh.STABLE_1, DfhAction.CORRECT_AND_SEND)
    if syndrome_zero and global_parity_ok:
        return Classification(Dfh.STABLE_1, DfhAction.SEND_CLEAN)
    return Classification(Dfh.DISABLED, DfhAction.ERROR_MISS, free_ecc_entry=True)


def classify_b10(
    sp_mismatches: int, syndrome_zero: bool, global_parity_ok: bool
) -> Classification:
    """Table 2, DFH b'10 rows: 4-bit parity + SECDED.

    Paper rows:

    - (ok, ok, ok)       -> b'00, free ECC entry [the "1 fault" was a
      transient that got overwritten], send clean;
    - (any, non-zero, bad) -> stay b'10, correct and send [the single
      LV fault, regardless of what parity shows — "Don't Care"];
    - (1+ seg, zero, ok) -> b'11 [non-LV error on top of the LV fault];
    - (2+, non-zero, ok) -> b'11;
    - (2+, zero, bad)    -> b'11.

    Omitted combinations, resolved here:

    - (ok, zero, bad): only the global-parity checkbit flipped; serve
      corrected, stay b'10.
    - (ok, non-zero, ok): even error count in the codeword; disable.
    - (1, zero, bad): inconsistent (parity sees a data-segment error
      the syndrome does not); disable.
    """
    if not syndrome_zero and not global_parity_ok:
        return Classification(Dfh.STABLE_1, DfhAction.CORRECT_AND_SEND)
    if sp_mismatches == 0:
        if syndrome_zero and global_parity_ok:
            return Classification(
                Dfh.STABLE_0, DfhAction.SEND_CLEAN, free_ecc_entry=True
            )
        if syndrome_zero and not global_parity_ok:
            return Classification(Dfh.STABLE_1, DfhAction.CORRECT_AND_SEND)
    return Classification(Dfh.DISABLED, DfhAction.ERROR_MISS, free_ecc_entry=True)


def classify(
    dfh: Dfh, sp_mismatches: int, syndrome_zero: bool, global_parity_ok: bool
) -> Classification:
    """Dispatch to the per-state classification (paper Table 2)."""
    if dfh is Dfh.STABLE_0:
        return classify_b00(sp_mismatches)
    if dfh is Dfh.INITIAL:
        return classify_b01(sp_mismatches, syndrome_zero, global_parity_ok)
    if dfh is Dfh.STABLE_1:
        return classify_b10(sp_mismatches, syndrome_zero, global_parity_ok)
    raise ValueError("disabled lines are never accessed (Table 2 last row)")


# -- precomputed classification tables -------------------------------------
#
# Table 2 is tiny: 3 accessible DFH states x 3 segmented-parity buckets
# (0 / 1 / 2-or-more mismatches) x 2 syndrome values x 2 global-parity
# values.  The tables below enumerate every cell *through the reference
# functions above*, so they cannot drift from the row-by-row encoding —
# they are a lookup-speed view, not a re-implementation.  ``CLASSIFY_*``
# are indexed ``[dfh, min(sp_mismatches, 2), syndrome_zero,
# global_parity_ok]``; the scalar table holds the (interned, frozen)
# ``Classification`` instances for per-access dispatch without any
# branch chain.

#: Integer action encodings used by the flat arrays.
ACTION_SEND_CLEAN = 0
ACTION_CORRECT_AND_SEND = 1
ACTION_ERROR_MISS = 2

_ACTION_CODE = {
    DfhAction.SEND_CLEAN: ACTION_SEND_CLEAN,
    DfhAction.CORRECT_AND_SEND: ACTION_CORRECT_AND_SEND,
    DfhAction.ERROR_MISS: ACTION_ERROR_MISS,
}


def _build_tables():
    table = [[[[None] * 2 for _ in range(2)] for _ in range(3)] for _ in range(3)]
    nxt = np.zeros((3, 3, 2, 2), dtype=np.int8)
    act = np.zeros((3, 3, 2, 2), dtype=np.int8)
    free = np.zeros((3, 3, 2, 2), dtype=bool)
    for dfh in (Dfh.STABLE_0, Dfh.INITIAL, Dfh.STABLE_1):
        for sp in range(3):
            for syn in (False, True):
                for gp in (False, True):
                    cls = classify(dfh, sp, syn, gp)
                    table[dfh][sp][syn][gp] = cls
                    # int() the booleans: numpy would treat bare bool
                    # scalars in an index tuple as 0-d masks (False
                    # selects nothing), not as positions.
                    cell = (int(dfh), sp, int(syn), int(gp))
                    nxt[cell] = int(cls.next_dfh)
                    act[cell] = _ACTION_CODE[cls.action]
                    free[cell] = cls.free_ecc_entry
    return table, nxt, act, free


_TABLE, CLASSIFY_NEXT, CLASSIFY_ACTION, CLASSIFY_FREE = _build_tables()


def classify_cached(
    dfh: int, sp_mismatches: int, syndrome_zero: bool, global_parity_ok: bool
) -> Classification:
    """Table-lookup form of :func:`classify` (identical by construction).

    Accepts a plain-int ``dfh`` and returns the interned
    :class:`Classification` the reference dispatch would build — no
    enum identity checks, no dataclass allocation.
    """
    if dfh == 3:
        raise ValueError("disabled lines are never accessed (Table 2 last row)")
    sp = sp_mismatches if sp_mismatches < 2 else 2
    return _TABLE[dfh][sp][syndrome_zero][global_parity_ok]


def classify_batch(dfh, sp_mismatches, syndrome_zero, global_parity_ok):
    """Vectorized Table 2 over aligned numpy arrays.

    Evaluates a whole window of (DFH state, signal triple) rows at
    once and returns ``(next_dfh, action, free_ecc_entry)`` arrays,
    with actions encoded as ``ACTION_SEND_CLEAN`` /
    ``ACTION_CORRECT_AND_SEND`` / ``ACTION_ERROR_MISS``.  Every row
    must be an accessible state (DFH != b'11), exactly as the scalar
    dispatch requires.
    """
    dfh = np.asarray(dfh, dtype=np.int8)
    if np.any(dfh == 3):
        raise ValueError("disabled lines are never accessed (Table 2 last row)")
    sp = np.minimum(np.asarray(sp_mismatches, dtype=np.int8), 2)
    syn = np.asarray(syndrome_zero, dtype=np.int8)
    gp = np.asarray(global_parity_ok, dtype=np.int8)
    idx = ((dfh * 3 + sp) * 2 + syn) * 2 + gp
    return (
        CLASSIFY_NEXT.ravel()[idx],
        CLASSIFY_ACTION.ravel()[idx],
        CLASSIFY_FREE.ravel()[idx],
    )
