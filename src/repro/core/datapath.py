"""Bit-accurate Killi data path.

Stores real 512-bit line contents plus their parity bits and SECDED
checkbits through the faulty cells of a :class:`FaultMap`, and derives
the controller signals with the *real* encoders/decoders from
:mod:`repro.ecc`.  The production simulator uses the sparse
error-vector model (:mod:`repro.core.linestate`) instead; the test
suite cross-validates the two on random contents, which is the
ground-truth check for the linearity argument the sparse model rests
on.

Also useful directly in examples: it shows actual data corruption and
correction happening bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from repro.core.layout import LineLayout
from repro.core.linestate import Signals
from repro.ecc.parity import SegmentedParity
from repro.ecc.secded import SecDedCode
from repro.faults.fault_map import FaultMap

__all__ = ["BitAccurateDataPath"]


class BitAccurateDataPath:
    """Bit-level storage of protected lines through faulty cells.

    Parameters
    ----------
    fault_map:
        Persistent stuck-at faults (LineLayout coordinates).
    voltage:
        Operating voltage used for fault activation.
    layout:
        LV bit layout (data + 16 parity + 11 checkbits).
    """

    def __init__(
        self,
        fault_map: FaultMap,
        voltage: float,
        layout: LineLayout | None = None,
    ):
        self.fault_map = fault_map
        self.voltage = voltage
        self.layout = layout if layout is not None else LineLayout()
        if fault_map.line_bits < self.layout.total_bits:
            raise ValueError("fault map narrower than the line layout")
        self.secded = SecDedCode(self.layout.data_bits)
        self.parity16 = SegmentedParity(self.layout.data_bits, 16)
        self.parity4 = SegmentedParity(self.layout.data_bits, 4)
        self._written: dict = {}
        self._stored: dict = {}

    def write(self, line_id: int, data: np.ndarray) -> None:
        """Encode ``data`` and store the full LV image through faults."""
        layout = self.layout
        if len(data) != layout.data_bits:
            raise ValueError(f"expected {layout.data_bits} data bits")
        image = np.zeros(layout.total_bits, dtype=np.uint8)
        image[: layout.data_bits] = data
        image[layout.parity_offset : layout.parity_offset + 16] = (
            self.parity16.generate(data)
        )
        # parity4 bits are the first 4 of the 16 only if the segment
        # mapping nests; they do not (4 vs 16 interleave), so stable
        # lines regenerate parity4 into the first 4 parity cells.
        codeword = self.secded.encode(data)
        image[layout.check_offset : layout.total_bits] = codeword[layout.data_bits :]
        self._written[line_id] = image.copy()
        self._stored[line_id] = self.fault_map.apply(line_id, self.voltage, image)

    def write_stable(self, line_id: int, data: np.ndarray, with_ecc: bool) -> None:
        """Store in a stable configuration: 4 parity bits (+ ECC if kept)."""
        layout = self.layout
        image = np.zeros(layout.total_bits, dtype=np.uint8)
        image[: layout.data_bits] = data
        image[layout.parity_offset : layout.parity_offset + 4] = (
            self.parity4.generate(data)
        )
        if with_ecc:
            codeword = self.secded.encode(data)
            image[layout.check_offset :] = codeword[layout.data_bits :]
        self._written[line_id] = image.copy()
        self._stored[line_id] = self.fault_map.apply(line_id, self.voltage, image)

    def read_raw(self, line_id: int) -> np.ndarray:
        """The stored LV image as read back (faults applied at write)."""
        try:
            return self._stored[line_id].copy()
        except KeyError:
            raise KeyError(f"line {line_id} was never written") from None

    def effective_error_positions(self, line_id: int) -> set:
        """LV offsets where the stored image differs from what was written."""
        diff = self._stored[line_id] ^ self._written[line_id]
        return {int(p) for p in np.nonzero(diff)[0]}

    def read_signals(self, line_id: int, n_segments: int, use_ecc: bool) -> Signals:
        """Controller signals derived with the real decoders."""
        layout = self.layout
        stored = self.read_raw(line_id)
        data = stored[: layout.data_bits]
        parity_checker = self.parity16 if n_segments == 16 else self.parity4
        stored_parity = stored[
            layout.parity_offset : layout.parity_offset + n_segments
        ]
        sp_mismatches = parity_checker.mismatch_count(data, stored_parity)

        written_data = self._written[line_id][: layout.data_bits]
        data_errors = int(np.count_nonzero(data ^ written_data))
        if not use_ecc:
            return Signals(sp_mismatches, True, True, data_errors)
        codeword = np.concatenate([data, stored[layout.check_offset :]])
        result = self.secded.decode(codeword)
        return Signals(
            sp_mismatches,
            result.syndrome_zero,
            result.global_parity_ok,
            data_errors,
        )

    def read_corrected(self, line_id: int) -> np.ndarray:
        """Data after SECDED correction (the b'10 service path)."""
        layout = self.layout
        stored = self.read_raw(line_id)
        codeword = np.concatenate(
            [stored[: layout.data_bits], stored[layout.check_offset :]]
        )
        return self.secded.decode(codeword).data
