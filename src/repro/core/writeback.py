"""Killi for write-back caches (paper Section 5.6.1).

The paper sketches the write-back extension: error protection of a
line holding *dirty* data is upgraded based on its DFH —

- dirty data in a DFH b'00 line gets SECDED checkbits in the ECC cache
  (matching the failure probability of a safe-voltage SECDED cache);
- dirty data in a DFH b'10 line gets DECTED, stored at no extra area
  by combining the entry's 12 freed parity bits with its 11 SECDED
  bits (21 <= 23);
- a detected-uncorrectable error on a dirty line is a DUE (data loss),
  counted by :class:`repro.cache.core.WriteBackCache`.

This increases ECC-cache contention (dirty b'00 lines now occupy
entries), which is exactly the cost the paper predicts; the write-back
benchmarks quantify it.
"""

from __future__ import annotations

from repro.cache.hooks import AccessOutcome
from repro.core.dfh import Dfh
from repro.core.killi import KilliScheme

__all__ = ["KilliWriteBackScheme"]


class KilliWriteBackScheme(KilliScheme):
    """Killi with per-DFH protection upgrades for dirty lines."""

    def on_dirty(self, set_index: int, way: int) -> None:
        line_id = self._line_id(set_index, way)
        dfh = self._dfh(line_id)
        if dfh is Dfh.STABLE_0 and not self.ecc.contains(set_index, way):
            # Dirty data in a fault-free line: allocate SECDED checkbits.
            evicted = self.ecc.insert(set_index, way)
            if evicted is not None:
                self._handle_ecc_eviction(*evicted)
            self.cache.stats.bump("dirty_secded_allocations")
        elif dfh is Dfh.STABLE_1:
            # Entry exists; upgrade its contents to DECTED (area-free).
            self.cache.stats.bump("dirty_dected_upgrades")

    def hit_replay_info(self, set_index: int, way: int):
        # A b'00 line with an on-demand SECDED entry takes the special
        # path below (with ECC-cache touch side effects): full dispatch.
        if self.ecc.contains(set_index, way):
            return None
        return super().hit_replay_info(set_index, way)

    def on_read_hit(self, set_index: int, way: int) -> AccessOutcome:
        line_id = self._line_id(set_index, way)
        if int(self.dfh[line_id]) == int(Dfh.STABLE_0) and self.ecc.contains(
            set_index, way
        ):
            # Dirty b'00 line with on-demand SECDED: correct what the
            # plain parity path would have had to throw away.
            if not self.errors.is_dirty(line_id):
                self.hits_served += 1
                self.ecc.touch(set_index, way)
                return AccessOutcome.CLEAN
            signals = self.errors.signals(
                line_id, self.config.stable_segments, use_ecc=True
            )
            if signals.syndrome_zero and signals.global_parity_ok and (
                signals.sp_mismatches == 0
            ):
                self.hits_served += 1
                self.ecc.touch(set_index, way)
                return AccessOutcome.CLEAN
            if not signals.syndrome_zero and not signals.global_parity_ok:
                # Single-bit error: corrected thanks to the upgrade.
                self.hits_served += 1
                if not self.errors.correction_is_sound(line_id):
                    self.sdc_events += 1
                self.cache.stats.bump("ecc_corrections")
                self.ecc.touch(set_index, way)
                return AccessOutcome.CORRECTED
            # Multi-bit: retrain; the cache layer records the DUE.
            self._set_dfh(line_id, Dfh.STABLE_0, Dfh.INITIAL)
            self.ecc.remove(set_index, way)
            self.errors.clear(line_id)
            return AccessOutcome.RETRAIN_MISS
        return super().on_read_hit(set_index, way)
