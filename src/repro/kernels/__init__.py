"""Batched fault-pattern classification kernels.

Packed-bit (uint64) implementations of the signal machinery that the
scalar paths in :mod:`repro.core.linestate` and
:mod:`repro.analysis.montecarlo` evaluate one pattern at a time:
segmented-parity membership, SECDED syndromes and global parity, all
as table lookups plus popcounts over whole error-pattern matrices.
"""

from repro.kernels.classify import LineSignalKernel, RowSignals

__all__ = ["LineSignalKernel", "RowSignals"]
