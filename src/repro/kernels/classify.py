"""Vectorized Table-2 signal evaluation over packed error vectors.

Every Killi signal is linear in the error vector, so each one reduces
to *"does this bit set intersect that precomputed mask an odd number
of times?"* — a word-wide AND plus a popcount parity.  This module
precomputes, once per line layout, the packed membership masks in the
LV offset space (data | parity | checkbits — see
:class:`repro.core.layout.LineLayout`):

- one mask per parity segment (the segment's data members plus its own
  LV-resident parity bit);
- one mask per SECDED syndrome bit (positions whose Hamming column
  code has that bit set; the global parity bit belongs to none);
- the codeword mask (data + all checkbits) whose weight parity is the
  global-parity signal and whose weight is the codeword fault count;
- the plain data mask for ground-truth corrupt-bit counting.

Given those masks, classifying a million fault patterns is ~30 masked
popcount passes over a ``(n, words)`` uint64 matrix — no per-pattern
Python.  The scalar implementations
(:meth:`repro.core.linestate.LineErrorModel.signals_for_positions`,
:meth:`repro.analysis.montecarlo.CoverageSampler._classify_ok`) are
kept as the pinned references; the equivalence tests in
``tests/ecc/test_batch_kernels.py`` and ``tests/core/test_linestate.py``
hold the two bit-identical.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.core.layout import LineLayout
from repro.ecc.secded import SecDedCode
from repro.utils.bitpack import n_words, pack_positions, popcount64

__all__ = ["LineSignalKernel", "RowSignals"]

_ONE = np.uint64(1)


class RowSignals(NamedTuple):
    """Controller-visible signals of one packed error row (plain scalars)."""

    sp_mismatches: int
    syndrome_zero: bool
    global_parity_ok: bool
    data_error_bits: int


class LineSignalKernel:
    """Precomputed packed masks + batched signal evaluation for one layout.

    Parameters
    ----------
    layout:
        LV bit layout of a protected line.
    secded:
        The SECDED instance whose column codes define the syndrome
        masks; constructed for ``layout.data_bits`` when omitted.
    interleaved:
        Data-bit-to-segment mapping: ``offset % n_segments`` when True
        (the paper's interleaving), ``offset // segment_width``
        otherwise.  Mirrors ``LineErrorModel.interleaved_parity``.
    """

    def __init__(
        self,
        layout: LineLayout | None = None,
        secded: SecDedCode | None = None,
        interleaved: bool = True,
    ):
        self.layout = layout if layout is not None else LineLayout()
        self.secded = (
            secded if secded is not None else SecDedCode(self.layout.data_bits)
        )
        if self.secded.k != self.layout.data_bits:
            raise ValueError("SECDED data width does not match the layout")
        self.interleaved = interleaved
        self.words = n_words(self.layout.total_bits)

        total = self.layout.total_bits
        data_offsets = np.arange(self.layout.data_bits)
        check_offsets = np.arange(self.layout.check_offset, total)
        self.data_mask = pack_positions(data_offsets, total)
        self.checkbit_mask = pack_positions(check_offsets, total)
        self.codeword_mask = self.data_mask | self.checkbit_mask

        # Syndrome bit-slice masks in LV offset space.  LV offset ->
        # codeword position is the identity for data bits and
        # data_bits + i for checkbit i; the global parity bit (the last
        # checkbit) has no column code and joins no mask.
        codes = self.secded.column_codes
        lv_of_codeword = np.concatenate(
            [data_offsets, self.layout.check_offset + np.arange(self.secded.r)]
        )
        self.syndrome_masks = np.zeros((self.secded.r, self.words), dtype=np.uint64)
        for j in range(self.secded.r):
            members = lv_of_codeword[np.nonzero((codes >> j) & 1)[0]]
            self.syndrome_masks[j] = pack_positions(members, total)

        self._segment_masks: dict[int, np.ndarray] = {}
        self._signature_tables: dict[int, np.ndarray] = {}
        self._signature_ints: dict[int, list[int]] = {}
        self._data_mask_int = int.from_bytes(
            self.data_mask.astype("<u8").tobytes(), "little"
        )

    # -- mask construction ---------------------------------------------------

    def segment_masks(self, n_segments: int) -> np.ndarray:
        """Packed per-segment membership masks, shape ``(n_segments, words)``.

        Each segment owns its data members plus its own LV-resident
        parity bit, so a flipped parity bit mismatches its segment
        exactly as in hardware.  Parity bits beyond ``n_segments``
        (unused in the stable 4-segment configuration) belong to no
        segment.
        """
        cached = self._segment_masks.get(n_segments)
        if cached is not None:
            return cached
        layout = self.layout
        if layout.data_bits % n_segments:
            raise ValueError("data bits must divide evenly into segments")
        data_offsets = np.arange(layout.data_bits)
        if self.interleaved:
            segment_of = data_offsets % n_segments
        else:
            segment_of = data_offsets // (layout.data_bits // n_segments)
        masks = np.zeros((n_segments, self.words), dtype=np.uint64)
        for segment in range(n_segments):
            members = list(data_offsets[segment_of == segment])
            if segment < layout.max_parity_bits:
                members.append(layout.parity_offset + segment)
            masks[segment] = pack_positions(members, layout.total_bits)
        self._segment_masks[n_segments] = masks
        return masks

    def _signature_int_table(self, n_segments: int) -> list[int]:
        """The :meth:`signature_table` as a plain Python ``int`` list."""
        cached = self._signature_ints.get(n_segments)
        if cached is None:
            cached = [int(s) for s in self.signature_table(n_segments)]
            self._signature_ints[n_segments] = cached
        return cached

    def signature_table(self, n_segments: int) -> np.ndarray:
        """Per-LV-offset signal signature, one uint64 per offset.

        Because every signal is a parity, flipping offset ``o`` XORs a
        fixed *signature* into the signal state.  The signature packs,
        per offset: its segment membership bit (``[0, n_segments)``),
        its syndrome column code (``[n_segments, n_segments + r)``) and
        its codeword-membership bit (``n_segments + r``, whose fold is
        the global-parity mismatch).  XOR-folding the table over an
        offset set yields every parity-style signal in one word.
        """
        cached = self._signature_tables.get(n_segments)
        if cached is not None:
            return cached
        layout = self.layout
        r = self.secded.r
        if n_segments + r + 1 > 64:
            raise ValueError("signature does not fit in 64 bits")
        synd_shift = n_segments
        codeword_bit = 1 << (n_segments + r)
        table = np.zeros(layout.total_bits, dtype=np.uint64)
        codes = self.secded.column_codes
        for offset in range(layout.total_bits):
            signature = 0
            if layout.is_data(offset):
                if self.interleaved:
                    segment = offset % n_segments
                else:
                    segment = offset // (layout.data_bits // n_segments)
                signature |= 1 << segment
                signature |= int(codes[offset]) << synd_shift
                signature |= codeword_bit
            elif layout.is_parity(offset):
                index = layout.parity_index(offset)
                if index < n_segments:
                    signature |= 1 << index
            else:
                position = layout.codeword_position(offset)
                if position < self.secded.n - 1:
                    signature |= int(codes[position]) << synd_shift
                signature |= codeword_bit
            table[offset] = signature
        self._signature_tables[n_segments] = table
        return table

    # -- batched evaluation ---------------------------------------------------

    def codeword_weights(self, packed: np.ndarray) -> np.ndarray:
        """Number of codeword (data + checkbit) flips per packed row."""
        packed = np.atleast_2d(np.asarray(packed, dtype=np.uint64))
        return popcount64(packed & self.codeword_mask).sum(axis=1, dtype=np.int64)

    def data_weights(self, packed: np.ndarray) -> np.ndarray:
        """Number of flipped *data* bits per packed row (ground truth)."""
        packed = np.atleast_2d(np.asarray(packed, dtype=np.uint64))
        return popcount64(packed & self.data_mask).sum(axis=1, dtype=np.int64)

    def signals_matrix(
        self, packed: np.ndarray, n_segments: int, use_ecc: bool = True
    ):
        """Evaluate all Table-2 signals for a matrix of packed rows.

        Returns ``(sp_mismatches, syndrome_zero, global_parity_ok,
        data_error_bits)`` as aligned arrays — the batched equivalent
        of :meth:`repro.core.linestate.LineErrorModel.signals_for_positions`.
        Without ECC the syndrome is reported zero and the parity ok,
        exactly like the scalar path for DFH b'00 lines.
        """
        packed = np.atleast_2d(np.asarray(packed, dtype=np.uint64))
        n = packed.shape[0]
        seg_masks = self.segment_masks(n_segments)
        overlap = popcount64(packed[:, None, :] & seg_masks[None, :, :])
        odd_segments = (overlap.sum(axis=2, dtype=np.uint64) & _ONE) != 0
        sp = odd_segments.sum(axis=1, dtype=np.int64)
        data_errors = self.data_weights(packed)
        if not use_ecc:
            ones = np.ones(n, dtype=bool)
            return sp, ones, ones.copy(), data_errors
        overlap = popcount64(packed[:, None, :] & self.syndrome_masks[None, :, :])
        syndrome_bits = (overlap.sum(axis=2, dtype=np.uint64) & _ONE) != 0
        syndrome_zero = ~syndrome_bits.any(axis=1)
        parity_ok = (self.codeword_weights(packed) & 1) == 0
        return sp, syndrome_zero, parity_ok, data_errors

    def codeword_weights_from_offsets(
        self, offsets: np.ndarray, valid: np.ndarray
    ) -> np.ndarray:
        """Codeword fault count per row of an ``(n, k)`` offset matrix."""
        layout = self.layout
        in_parity = (offsets >= layout.parity_offset) & (
            offsets < layout.check_offset
        )
        return (valid & ~in_parity).sum(axis=1, dtype=np.int64)

    def signals_from_offsets(
        self,
        offsets: np.ndarray,
        valid: np.ndarray,
        n_segments: int,
        use_ecc: bool = True,
    ):
        """Table-2 signals for patterns given as offset lists.

        ``offsets`` is ``(n, k_max)`` with per-row validity mask
        ``valid`` (invalid entries must still index the table — use 0).
        One gather + XOR-fold of the :meth:`signature_table` replaces
        the per-mask popcount passes of :meth:`signals_matrix`; the two
        paths are equivalent and both pinned against the scalar
        reference.  Returns the same tuple as :meth:`signals_matrix`.
        """
        table = self.signature_table(n_segments)
        contributions = np.where(valid, table[offsets], np.uint64(0))
        folded = np.bitwise_xor.reduce(contributions, axis=1)
        seg_field = np.uint64((1 << n_segments) - 1)
        sp = popcount64(folded & seg_field).astype(np.int64)
        data_errors = (valid & (offsets < self.layout.data_bits)).sum(
            axis=1, dtype=np.int64
        )
        if not use_ecc:
            ones = np.ones(len(sp), dtype=bool)
            return sp, ones, ones.copy(), data_errors
        r = self.secded.r
        synd_field = np.uint64(((1 << r) - 1) << n_segments)
        syndrome_zero = (folded & synd_field) == 0
        parity_ok = (folded & np.uint64(1 << (n_segments + r))) == 0
        return sp, syndrome_zero, parity_ok, data_errors

    def signals_row(
        self, row: np.ndarray, n_segments: int, use_ecc: bool = True
    ) -> RowSignals:
        """Signals of one packed row via the signature-table fold.

        Pure Python big-int arithmetic: a line access sees a handful of
        flipped bits, so iterating the set bits and XOR-folding their
        signatures beats any per-mask numpy pass (whose per-call
        overhead dwarfs the 539-bit payload).
        """
        table = self._signature_int_table(n_segments)
        value = int.from_bytes(
            np.ascontiguousarray(row).astype("<u8", copy=False).tobytes(), "little"
        )
        data_errors = (value & self._data_mask_int).bit_count()
        folded = 0
        while value:
            low = value & -value
            folded ^= table[low.bit_length() - 1]
            value ^= low
        sp = (folded & ((1 << n_segments) - 1)).bit_count()
        if not use_ecc:
            return RowSignals(sp, True, True, data_errors)
        r = self.secded.r
        syndrome_zero = ((folded >> n_segments) & ((1 << r) - 1)) == 0
        parity_ok = ((folded >> (n_segments + r)) & 1) == 0
        return RowSignals(sp, syndrome_zero, parity_ok, data_errors)
