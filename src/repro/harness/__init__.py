"""Experiment harness.

One runner per table/figure of the paper's evaluation (see DESIGN.md's
experiment index), a registry-backed scheme factory shared by all of
them (:mod:`repro.scenario`), a parallel cell-execution engine
(:mod:`repro.harness.runner`) every simulation campaign goes through —
accepting both legacy :class:`CellSpec` cells and declarative
:class:`~repro.scenario.config.ScenarioConfig` scenarios — and a CLI
(``killi-experiment``) that prints the regenerated rows/series next to
the paper's numbers recorded in EXPERIMENTS.md, plus
``killi-experiment scenario run|validate|list`` for committed scenario
files.
"""

from repro.harness.experiments import (
    EXPERIMENTS,
    fig1_cell_pfail,
    fig2_line_distribution,
    fig4_fig5_performance,
    fig6_coverage,
    run_experiment,
    table4_strong_ecc,
    table5_area,
    table6_power,
    table7_olsc,
)
from repro.harness.journal import CellFailure, RunJournal
from repro.metrics import METRICS
from repro.harness.results import PerfPoint, PerformanceMatrix
from repro.harness.runner import (
    CampaignError,
    CellResult,
    CellSpec,
    make_scheme,
    run_cell,
    run_cells,
    scheme_names,
)

__all__ = [
    "CampaignError",
    "CellFailure",
    "RunJournal",
    "METRICS",
    "EXPERIMENTS",
    "run_experiment",
    "make_scheme",
    "scheme_names",
    "fig1_cell_pfail",
    "fig2_line_distribution",
    "fig4_fig5_performance",
    "fig6_coverage",
    "table4_strong_ecc",
    "table5_area",
    "table6_power",
    "table7_olsc",
    "PerfPoint",
    "PerformanceMatrix",
    "CellSpec",
    "CellResult",
    "run_cell",
    "run_cells",
]
