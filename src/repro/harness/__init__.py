"""Experiment harness.

One runner per table/figure of the paper's evaluation (see DESIGN.md's
experiment index), a scheme factory shared by all of them, and a CLI
(``killi-experiment``) that prints the regenerated rows/series next to
the paper's numbers recorded in EXPERIMENTS.md.
"""

from repro.harness.experiments import (
    EXPERIMENTS,
    fig1_cell_pfail,
    fig2_line_distribution,
    fig4_fig5_performance,
    fig6_coverage,
    make_scheme,
    run_experiment,
    scheme_names,
    table4_strong_ecc,
    table5_area,
    table6_power,
    table7_olsc,
)
from repro.harness.results import PerfPoint, PerformanceMatrix

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "make_scheme",
    "scheme_names",
    "fig1_cell_pfail",
    "fig2_line_distribution",
    "fig4_fig5_performance",
    "fig6_coverage",
    "table4_strong_ecc",
    "table5_area",
    "table6_power",
    "table7_olsc",
    "PerfPoint",
    "PerformanceMatrix",
]
