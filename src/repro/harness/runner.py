"""Parallel experiment execution engine.

Every simulation experiment in the harness is a set of independent
*cells*: one (workload, scheme, voltage, seed) simulation each.  This
module runs such sets — serially or fanned out over a process pool —
with three guarantees:

- **Determinism.**  Each cell derives everything it needs (fault map,
  trace, scheme RNG) from its own :class:`~repro.utils.rng.RngFactory`
  streams, which are pure functions of ``(seed, name)``.  A cell's
  result is therefore independent of which process runs it, in what
  order, and alongside which other cells: ``jobs=N`` is bit-identical
  to ``jobs=1``.
- **Ordered collection.**  ``run_cells`` returns results in input
  order regardless of completion order, with per-cell wall-clock
  timing and an optional progress callback.
- **Free re-runs.**  With ``cache_dir`` set, each finished cell is
  written to disk keyed by a fingerprint of its spec; re-running an
  unchanged cell loads the stored result instead of simulating.

Expensive deterministic inputs (fault maps, traces) are additionally
memoised per process, so cells sharing a (seed, workload) do not
rebuild them — and, on fork-based platforms, worker processes inherit
the parent's warm memo for free.

Campaigns are additionally **fault tolerant** (see
``docs/campaign-robustness.md``): a crashed worker or broken process
pool no longer aborts the run — failed cells are retried with jittered
backoff (``retries``), optionally bounded per cell (``timeout``), and
anything that fails permanently is surfaced at the end as a
:class:`CampaignError` carrying structured
:class:`~repro.harness.journal.CellFailure` records, after every other
cell has finished and been cached.  Attach a
:class:`~repro.harness.journal.RunJournal` (``journal=``) to stream
one JSONL event per cell and resume interrupted campaigns
(``resume=``).  Duplicate specs (same fingerprint) are simulated once
and fanned back out to every requesting index.
"""

from __future__ import annotations

import dataclasses
import json
import logging
import os
import random
import signal
import tempfile
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.cache.core import WriteBackCache
from repro.faults import FaultMap
from repro.gpu import GpuSimulator
from repro.harness.journal import CellFailure, RunJournal, finished_fingerprints
from repro.harness.results import PerfPoint
from repro.scenario.config import ScenarioConfig, as_scenario
from repro.scenario.schemes import (
    LV_VOLTAGE,
    make_scheme,
    scheme_names,
)
from repro.traces import workload_trace_memo
from repro.metrics import METRICS
from repro.utils.rng import RngFactory

__all__ = [
    "CellSpec",
    "CellResult",
    "CellFailure",
    "CampaignError",
    "CellTimeoutError",
    "make_scheme",
    "scheme_names",
    "run_cell",
    "run_cells",
]

_LOG = logging.getLogger("repro.harness")

#: Bump when CellResult's serialised shape changes: invalidates every
#: on-disk cache entry written by an older layout.
SCHEMA_VERSION = 1


# -- memoised deterministic inputs -------------------------------------------


@lru_cache(maxsize=4)
def fault_map_for(n_lines: int, seed: int) -> FaultMap:
    """The (deterministic) chip fault map for an experiment seed.

    Derived from the seed's ``"fault-map"`` stream — the same map the
    serial runners always built — and memoised because every cell of a
    campaign shares it.  FaultMap is read-only after construction.
    """
    return FaultMap(n_lines=n_lines, rng=RngFactory(seed).stream("fault-map"))


def trace_for(workload: str, accesses_per_cu: int, n_cus: int, seed: int):
    """The (deterministic) kernel trace for a (workload, seed) pair.

    Derived from the seed's ``"trace/<workload>"`` stream; memoised
    because every scheme cell of a workload replays the same trace.
    Delegates to the fingerprint-keyed memo in
    :func:`repro.traces.workloads.workload_trace_memo`, which (unlike
    the name-blind ``lru_cache`` it replaced) keys on the registered
    workload's generative identity, so plugin re-registration can
    never serve a stale trace.  Traces are read-only (the engine
    copies them into flat arrays).
    """
    return workload_trace_memo(
        workload, accesses_per_cu, n_cus=n_cus, seed=seed
    )


# -- cell specification and result -------------------------------------------


@dataclass(frozen=True)
class CellSpec:
    """One independent experiment cell (compatibility shim).

    The typed schema now lives in
    :class:`~repro.scenario.config.ScenarioConfig`; ``CellSpec`` keeps
    the historical flat call shape and delegates normalisation and
    fingerprinting to its scenario projection, so the two construction
    paths can never drift apart.  The tuple (workload, scheme, voltage,
    seed, accesses_per_cu, scheme_config, write_back) fully determines
    the simulation via named RNG streams; ``engine`` picks the inner
    loop and ``substrate`` the tag/LRU backing, but neither changes the
    numbers (all combinations are pinned bit-equivalent), so both are
    excluded from the cache fingerprint.
    """

    workload: str
    scheme: str
    voltage: float = LV_VOLTAGE
    seed: int = 42
    accesses_per_cu: int = 30000
    scheme_config: tuple = ()
    """KilliConfig overrides as sorted (field, value) pairs; pass a
    plain dict — it is normalised on construction."""
    write_back: bool = False
    engine: str = "vectorized"
    substrate: Optional[str] = None
    """Tag/LRU substrate ("object" / "soa"); None = session default."""

    def __post_init__(self):
        if isinstance(self.scheme_config, dict):
            object.__setattr__(
                self, "scheme_config", tuple(sorted(self.scheme_config.items()))
            )
        else:
            object.__setattr__(self, "scheme_config", tuple(self.scheme_config))

    @property
    def scheme_overrides(self) -> dict:
        return dict(self.scheme_config)

    def to_scenario(self) -> ScenarioConfig:
        """The typed scenario equivalent of this cell."""
        return ScenarioConfig.from_cell_spec(self)

    def fingerprint(self) -> str:
        """Stable content key for the on-disk result cache.

        Delegates to the scenario's canonical fingerprint, which is
        byte-compatible with the payload this class used to hash —
        pre-existing result caches stay warm.
        """
        return self.to_scenario().fingerprint()


@dataclass
class CellResult:
    """Metrics of one finished cell (plain data; JSON-serialisable)."""

    workload: str
    scheme: str
    voltage: float
    seed: int
    cycles: int
    instructions: int
    l2: dict
    """Full L2 counter dict (``CacheStats.as_dict()``)."""
    memory_reads: int
    memory_writes: int
    disabled_fraction: float = 0.0
    sdc_events: int = 0
    dfh: Optional[dict] = None
    """DFH-state histogram (Killi schemes only)."""
    dfh_lines: int = 0
    elapsed_s: float = 0.0
    from_cache: bool = False
    fingerprint: str = ""

    @property
    def l2_misses(self) -> int:
        return self.l2["read_misses"] + self.l2["write_misses"]

    @property
    def l2_mpki(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.l2_misses / self.instructions

    def to_perf_point(self) -> PerfPoint:
        """Project onto the Figure 4/5 matrix cell type."""
        return PerfPoint(
            workload=self.workload,
            scheme=self.scheme,
            cycles=self.cycles,
            instructions=self.instructions,
            l2_misses=self.l2_misses,
            error_induced_misses=self.l2.get("error_induced_misses", 0),
            ecc_evict_invalidations=self.l2.get("ecc_evict_invalidations", 0),
            memory_reads=self.memory_reads,
            memory_writes=self.memory_writes,
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        return cls(**data)


# -- cell execution -----------------------------------------------------------


def run_cell(spec) -> CellResult:
    """Execute one cell: fresh GPU, deterministic inputs, full metrics.

    ``spec`` may be a legacy :class:`CellSpec` or a
    :class:`~repro.scenario.config.ScenarioConfig`; both normalise to
    the same scenario and produce bit-identical results.  Pure function
    of ``spec``: reproduces exactly what the serial Figure 4/5 loop
    computed for the same (workload, scheme, voltage, seed) — same
    fault-map stream, same trace stream, same per-cell scheme RNG
    namespace.
    """
    scenario = as_scenario(spec)
    workload = scenario.workload.name
    scheme_name = scenario.scheme.name
    voltage = scenario.fault.voltage
    seed = scenario.fault.seed
    with METRICS.timer("cell.setup"):
        gpu_config = scenario.gpu.to_gpu_config()
        fault_map = fault_map_for(gpu_config.l2.n_lines, seed)
        trace = trace_for(
            workload, scenario.workload.accesses_per_cu, gpu_config.n_cus, seed
        )
        rngs = RngFactory(seed).child(f"{workload}/{scheme_name}")
        scheme = make_scheme(
            scheme_name,
            gpu_config,
            fault_map,
            voltage,
            rngs,
            scheme_config=scenario.scheme.overrides or None,
            write_back=scenario.scheme.write_back,
        )
        simulator = GpuSimulator(
            gpu_config,
            scheme,
            engine=scenario.engine.engine,
            substrate=scenario.engine.substrate,
        )
        if scenario.scheme.write_back:
            simulator.l2 = WriteBackCache(
                gpu_config.l2,
                scheme,
                gpu_config.l2_latencies,
                substrate=simulator.substrate,
            )

    started = time.perf_counter()
    with METRICS.timer("cell.simulate"):
        result = simulator.run(trace)
    elapsed = time.perf_counter() - started
    METRICS.incr("cells.simulated")

    dfh = scheme.dfh_histogram() if hasattr(scheme, "dfh_histogram") else None
    return CellResult(
        workload=workload,
        scheme=scheme_name,
        voltage=voltage,
        seed=seed,
        cycles=result.cycles,
        instructions=result.instructions,
        l2=result.l2_stats.as_dict(),
        memory_reads=simulator.l2.memory_reads,
        memory_writes=simulator.l2.memory_writes,
        disabled_fraction=(
            scheme.disabled_fraction()
            if hasattr(scheme, "disabled_fraction")
            else 0.0
        ),
        sdc_events=getattr(scheme, "sdc_events", 0),
        dfh=dfh,
        dfh_lines=len(scheme.dfh) if hasattr(scheme, "dfh") else 0,
        elapsed_s=elapsed,
        fingerprint=scenario.fingerprint(),
    )


# -- on-disk result cache ------------------------------------------------------


def _cache_path(cache_dir: str, fingerprint: str) -> str:
    return os.path.join(cache_dir, f"{fingerprint}.json")


def _quarantine(path: str) -> None:
    """Move a corrupt cache entry aside so it is parsed (at most) once.

    The entry is renamed to ``<path>.corrupt`` — out of the cache's
    namespace but preserved for inspection — instead of being left in
    place to fail deserialisation again on every future campaign.
    """
    try:
        os.replace(path, path + ".corrupt")
    except OSError:
        return
    METRICS.incr("cache.corrupt")
    _LOG.warning("quarantined corrupt cache entry %s", path)


def _load_cached(cache_dir: str, fingerprint: str) -> Optional[CellResult]:
    """Load a cached result; None on miss (corrupt entries are
    quarantined to ``.corrupt`` and counted, then treated as misses)."""
    path = _cache_path(cache_dir, fingerprint)
    try:
        with open(path) as handle:
            payload = json.load(handle)
        if payload.get("schema") != SCHEMA_VERSION:
            _quarantine(path)
            return None
        result = CellResult.from_dict(payload["result"])
    except FileNotFoundError:
        METRICS.incr("cache.miss")
        return None
    except OSError:
        METRICS.incr("cache.miss")
        return None
    except (ValueError, KeyError, TypeError):
        _quarantine(path)
        return None
    METRICS.incr("cache.hit")
    result.from_cache = True
    return result


def _store_cached(
    cache_dir: str,
    scenario: ScenarioConfig,
    result: CellResult,
    fingerprint: Optional[str] = None,
) -> bool:
    """Atomically persist a result (rename tolerates parallel writers).

    Returns True when stored.  Any failure — I/O *or* an unserialisable
    result — is logged and counted, never raised: a cache-store problem
    must not kill a campaign, and the temp file is removed either way.
    """
    if fingerprint is None:
        fingerprint = scenario.fingerprint()
    payload = {
        "schema": SCHEMA_VERSION,
        "spec": scenario.to_dict(),
        "result": result.to_dict(),
    }
    try:
        os.makedirs(cache_dir, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
    except OSError as error:
        METRICS.incr("cache.store_failed")
        _LOG.warning("cache store failed for %s: %s", fingerprint[:12], error)
        return False
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, _cache_path(cache_dir, fingerprint))
    except (OSError, TypeError, ValueError) as error:
        METRICS.incr("cache.store_failed")
        _LOG.warning("cache store failed for %s: %s", fingerprint[:12], error)
        return False
    finally:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
    METRICS.incr("cache.stored")
    return True


# -- campaign execution --------------------------------------------------------

ProgressFn = Callable[[int, int, CellResult], None]


class CellTimeoutError(TimeoutError):
    """A cell exceeded the per-cell ``timeout`` budget."""


class CampaignError(RuntimeError):
    """One or more cells failed permanently (retries exhausted).

    Raised at the *end* of the campaign — every other cell has already
    finished, been cached and journaled.  ``failures`` holds one
    structured :class:`~repro.harness.journal.CellFailure` per failed
    cell; ``results`` is the full in-order result list with ``None`` at
    the failed indices, so completed work remains accessible.
    """

    def __init__(self, failures: List[CellFailure], results: List[Optional[CellResult]]):
        self.failures = failures
        self.results = results
        shown = "; ".join(str(f) for f in failures[:3])
        more = f" (+{len(failures) - 3} more)" if len(failures) > 3 else ""
        super().__init__(
            f"{len(failures)} of {len(results)} campaign cell(s) failed "
            f"permanently: {shown}{more}"
        )


def _validate_campaign_args(
    jobs, retries, timeout, backoff, cache_dir, resume
) -> None:
    """Reject bad campaign parameters with a clear error up front,
    instead of silently falling through to the serial path or crashing
    inside ``ProcessPoolExecutor``."""
    try:
        jobs_ok = int(jobs) == jobs and jobs >= 1
    except (TypeError, ValueError):
        jobs_ok = False
    if not jobs_ok:
        raise ValueError(f"jobs must be an integer >= 1, got {jobs!r}")
    try:
        retries_ok = int(retries) == retries and retries >= 0
    except (TypeError, ValueError):
        retries_ok = False
    if not retries_ok:
        raise ValueError(f"retries must be an integer >= 0, got {retries!r}")
    if timeout is not None and not (isinstance(timeout, (int, float)) and timeout > 0):
        raise ValueError(f"timeout must be > 0 seconds, got {timeout!r}")
    if backoff is not None and not (isinstance(backoff, (int, float)) and backoff >= 0):
        raise ValueError(f"backoff must be >= 0 seconds, got {backoff!r}")
    if resume is not None and cache_dir is None:
        raise ValueError(
            "resume requires cache_dir: the journal records *which* cells "
            "finished; the result cache holds their results"
        )


def _arm_timeout(seconds: Optional[float]):
    """Arm a SIGALRM-based deadline; returns a disarm callable.

    Timeouts are enforced inside the executing process (worker or
    in-process serial path) so a timed-out cell never leaves a zombie
    computation behind.  On platforms/threads without SIGALRM the
    deadline is not enforced (returns a no-op disarm).
    """
    if seconds is None or not hasattr(signal, "SIGALRM"):
        return lambda: None

    def _on_alarm(signum, frame):
        raise CellTimeoutError(f"cell exceeded the {seconds:g}s timeout")

    try:
        previous = signal.signal(signal.SIGALRM, _on_alarm)
        signal.setitimer(signal.ITIMER_REAL, float(seconds))
    except ValueError:
        # Not the main thread of this process; cannot enforce.
        return lambda: None

    def _disarm():
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)

    return _disarm


def _execute_cell(
    scenario: ScenarioConfig,
    fingerprint: str,
    timeout: Optional[float],
    collect_metrics: bool,
) -> Tuple[CellResult, int, float, Optional[dict]]:
    """One execution attempt: fault-injection hook, deadline, run_cell.

    Runs in the worker process (or in-process on the serial path) and
    returns ``(result, pid, attempt_elapsed_s, telemetry_delta)`` —
    the telemetry delta lets the parent aggregate worker-side metrics;
    it is only collected on the pool path (the serial path records
    straight into the parent's sink).
    """
    from repro.harness import faultinject

    if collect_metrics and METRICS.enabled:
        # A forked pool worker inherits the parent's counters as they
        # stood at fork time; drop them so drain() below returns only
        # this attempt's delta (the parent already holds its own copy).
        METRICS.reset()
    started = time.perf_counter()
    disarm = _arm_timeout(timeout)
    try:
        faultinject.maybe_inject(
            fingerprint, f"{scenario.workload.name}/{scenario.scheme.name}"
        )
        result = run_cell(scenario)
    finally:
        disarm()
    elapsed = time.perf_counter() - started
    telemetry = METRICS.drain() if (collect_metrics and METRICS.enabled) else None
    return result, os.getpid(), elapsed, telemetry


def _backoff_sleep(backoff: float, failed_attempt: int, jitter: random.Random) -> None:
    """Exponential backoff with +/-50% jitter before a retry."""
    if backoff <= 0:
        return
    time.sleep(backoff * (2 ** (failed_attempt - 1)) * (0.5 + jitter.random()))


class _Campaign:
    """Shared bookkeeping for one ``run_cells`` invocation."""

    def __init__(self, scenarios, fingerprints, groups, cache_dir,
                 journal, progress, retries):
        self.scenarios = scenarios
        self.fingerprints = fingerprints
        self.groups = groups  # fingerprint -> [indices], first-seen order
        self.cache_dir = cache_dir
        self.journal = journal
        self.progress = progress
        self.retries = retries
        self.total = len(scenarios)
        self.results: List[Optional[CellResult]] = [None] * self.total
        self.failures: List[CellFailure] = []
        self.done = 0

    def _fan_out(self, fingerprint: str, result: CellResult) -> None:
        """Assign one computed result to every index requesting it.

        The first index gets the object itself; duplicate-spec indices
        get shallow copies so callers can annotate results per index.
        """
        indices = self.groups[fingerprint]
        for k, index in enumerate(indices):
            self.results[index] = (
                result if k == 0 else dataclasses.replace(result)
            )

    def _emit(self, fingerprint, status, attempts, elapsed_s,
              pid=None, cache=None, error=None, resumed=False):
        """Journal + progress for every index of a finished cell."""
        indices = self.groups[fingerprint]
        for k, index in enumerate(indices):
            self.done += 1
            if self.journal is not None:
                self.journal.cell(
                    index=index,
                    fingerprint=fingerprint,
                    status=status,
                    attempts=attempts,
                    elapsed_s=elapsed_s,
                    pid=pid,
                    cache=cache,
                    error=error,
                    dedup_of=indices[0] if k else None,
                    resumed=resumed,
                )
            if self.progress and self.results[index] is not None:
                self.progress(self.done, self.total, self.results[index])

    def complete(self, fingerprint, result, attempts, pid, elapsed_s) -> None:
        cache_state = None
        if self.cache_dir:
            stored = _store_cached(
                self.cache_dir,
                self.scenarios[self.groups[fingerprint][0]],
                result,
                fingerprint,
            )
            cache_state = "stored" if stored else "store-failed"
        self._fan_out(fingerprint, result)
        status = "retried" if attempts > 1 else "ok"
        METRICS.incr("campaign.cells_ok", len(self.groups[fingerprint]))
        if attempts > 1:
            METRICS.incr("campaign.cells_retried", len(self.groups[fingerprint]))
        self._emit(fingerprint, status, attempts, elapsed_s,
                   pid=pid, cache=cache_state)

    def complete_cached(self, fingerprint, result, resumed: bool) -> None:
        self._fan_out(fingerprint, result)
        METRICS.incr("campaign.cells_cached", len(self.groups[fingerprint]))
        self._emit(fingerprint, "cached", 0, 0.0, cache="hit", resumed=resumed)

    def fail(self, fingerprint, attempts, error, elapsed_s) -> None:
        detail = {"type": type(error).__name__, "message": str(error)}
        for index in self.groups[fingerprint]:
            self.failures.append(CellFailure(
                index=index,
                fingerprint=fingerprint,
                attempts=attempts,
                error_type=detail["type"],
                message=detail["message"],
                elapsed_s=elapsed_s,
            ))
        METRICS.incr("campaign.cells_failed", len(self.groups[fingerprint]))
        _LOG.error(
            "cell %s failed permanently after %d attempt(s): %s: %s",
            fingerprint[:12], attempts, detail["type"], detail["message"],
        )
        self._emit(fingerprint, "failed", attempts, elapsed_s, error=detail)

    def record_attempt_failure(self, fingerprint, attempt, error,
                               elapsed_s) -> bool:
        """Journal one failed attempt; returns whether it will retry."""
        will_retry = attempt <= self.retries
        METRICS.incr("campaign.attempts_failed")
        _LOG.warning(
            "cell %s attempt %d failed (%s: %s)%s",
            fingerprint[:12], attempt, type(error).__name__, error,
            "; retrying" if will_retry else "",
        )
        if self.journal is not None:
            self.journal.attempt(
                index=self.groups[fingerprint][0],
                fingerprint=fingerprint,
                attempt=attempt,
                error_type=type(error).__name__,
                message=str(error),
                will_retry=will_retry,
                elapsed_s=elapsed_s,
            )
        return will_retry


def _run_serial(campaign: _Campaign, run_queue, timeout, backoff, jitter):
    """In-process execution with the same retry policy as the pool."""
    for fingerprint in run_queue:
        scenario = campaign.scenarios[campaign.groups[fingerprint][0]]
        attempt = 0
        while True:
            attempt += 1
            started = time.perf_counter()
            try:
                result, pid, elapsed, _ = _execute_cell(
                    scenario, fingerprint, timeout, collect_metrics=False
                )
            except Exception as error:  # noqa: BLE001 — isolation boundary
                elapsed = time.perf_counter() - started
                if campaign.record_attempt_failure(
                    fingerprint, attempt, error, elapsed
                ):
                    _backoff_sleep(backoff, attempt, jitter)
                    continue
                campaign.fail(fingerprint, attempt, error, elapsed)
                break
            campaign.complete(fingerprint, result, attempt, pid, elapsed)
            break


def _run_pool(campaign: _Campaign, run_queue, jobs, timeout, backoff, jitter):
    """Process-pool execution with per-cell isolation and pool rebuild.

    A worker exception fails only its own cell (retried up to the
    budget); a pool crash (``BrokenProcessPool`` — e.g. a worker was
    OOM-killed) fails every in-flight attempt the same way, then the
    pool is rebuilt once and eligible cells are resubmitted.
    """
    scenarios = campaign.scenarios
    # Warm the shared fault maps before forking so workers inherit
    # them (copy-on-write) instead of each resampling the chip.
    for gpu, seed in {
        (scenarios[campaign.groups[fp][0]].gpu,
         scenarios[campaign.groups[fp][0]].fault.seed)
        for fp in run_queue
    }:
        fault_map_for(gpu.to_gpu_config().l2.n_lines, seed)

    max_workers = min(jobs, len(run_queue))
    collect = METRICS.enabled
    pool = ProcessPoolExecutor(max_workers=max_workers)
    inflight: Dict[object, Tuple[str, int]] = {}

    def submit(fingerprint: str, attempt: int) -> None:
        scenario = scenarios[campaign.groups[fingerprint][0]]
        future = pool.submit(
            _execute_cell, scenario, fingerprint, timeout, collect
        )
        inflight[future] = (fingerprint, attempt)

    def consume(future, fingerprint, attempt, retry_later) -> bool:
        """Settle one future; returns True if it broke the pool."""
        broke = False
        try:
            result, pid, elapsed, telemetry = future.result()
        except BrokenExecutor as error:
            broke = True
            if campaign.record_attempt_failure(fingerprint, attempt, error, 0.0):
                retry_later.append((fingerprint, attempt))
            else:
                campaign.fail(fingerprint, attempt, error, 0.0)
        except Exception as error:  # noqa: BLE001 — isolation boundary
            if campaign.record_attempt_failure(fingerprint, attempt, error, 0.0):
                retry_later.append((fingerprint, attempt))
            else:
                campaign.fail(fingerprint, attempt, error, 0.0)
        else:
            if telemetry:
                METRICS.merge(telemetry)
            campaign.complete(fingerprint, result, attempt, pid, elapsed)
        return broke

    try:
        for fingerprint in run_queue:
            submit(fingerprint, 1)
        while inflight:
            ready, _ = wait(list(inflight), return_when=FIRST_COMPLETED)
            retry_later: List[Tuple[str, int]] = []
            pool_broke = False
            for future in ready:
                fingerprint, attempt = inflight.pop(future)
                pool_broke |= consume(future, fingerprint, attempt, retry_later)
            if pool_broke:
                # Every other in-flight future is doomed with the same
                # BrokenProcessPool; drain them, then rebuild the pool.
                for future, (fingerprint, attempt) in list(inflight.items()):
                    consume(future, fingerprint, attempt, retry_later)
                inflight.clear()
                pool.shutdown(wait=False, cancel_futures=True)
                pool = ProcessPoolExecutor(max_workers=max_workers)
                METRICS.incr("campaign.pool_rebuilds")
                _LOG.warning("worker pool crashed; rebuilt with %d worker(s)",
                             max_workers)
                if campaign.journal is not None:
                    campaign.journal.pool_broken(
                        f"worker pool crashed; rebuilt with {max_workers} worker(s)"
                    )
            for fingerprint, attempt in retry_later:
                _backoff_sleep(backoff, attempt, jitter)
                submit(fingerprint, attempt + 1)
    finally:
        pool.shutdown(wait=True, cancel_futures=True)


def run_cells(
    specs: Iterable,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
    *,
    retries: int = 0,
    timeout: Optional[float] = None,
    backoff: float = 0.05,
    journal=None,
    resume=None,
    strict: bool = True,
) -> List[CellResult]:
    """Run a set of cells, optionally in parallel, cached and journaled.

    Parameters
    ----------
    specs:
        Cells to run — legacy :class:`CellSpec` objects,
        :class:`~repro.scenario.config.ScenarioConfig` scenarios, or a
        mix.  Results come back in the same order.  Specs sharing a
        fingerprint are simulated once and fanned back out.
    jobs:
        Worker processes; ``1`` runs in-process (no pool).  Results
        are bit-identical either way.
    cache_dir:
        Directory for the fingerprint-keyed result cache.  Finished
        cells are stored there; unchanged cells are re-loaded for free
        (``CellResult.from_cache`` marks them).  Corrupt entries are
        quarantined to ``.corrupt`` files and recomputed.
    progress:
        ``progress(done, total, result)`` called after every finished
        cell (cached hits included), in completion order.
    retries:
        Extra execution attempts per cell after a worker exception,
        per-cell timeout, or pool crash (jittered exponential
        ``backoff`` between attempts).  Retried cells are bit-identical
        to first-try successes — the inputs derive only from the spec.
    timeout:
        Per-cell wall-clock budget in seconds, enforced inside the
        executing process via SIGALRM (unenforced where unavailable).
        A timed-out attempt counts against ``retries``.
    journal:
        Path or open :class:`~repro.harness.journal.RunJournal`:
        streams one JSONL event per cell plus campaign start/end
        records (see ``docs/campaign-robustness.md``).
    resume:
        Path to a previous run's journal.  Cells it records as
        finished load straight from the result cache (requires
        ``cache_dir``); anything unfinished is recomputed.  A resumed
        campaign is bit-identical to an uninterrupted one.
    strict:
        With the default True, permanently failed cells raise
        :class:`CampaignError` *after* the rest of the campaign has
        completed (the exception carries failures + partial results).
        With False, failed indices are simply ``None`` in the returned
        list.
    """
    _validate_campaign_args(jobs, retries, timeout, backoff, cache_dir, resume)
    scenarios = [as_scenario(spec) for spec in specs]
    fingerprints = [scenario.fingerprint() for scenario in scenarios]
    resume_set = finished_fingerprints(resume) if resume else frozenset()

    owns_journal = journal is not None and not isinstance(journal, RunJournal)
    jrn = RunJournal(journal) if owns_journal else journal

    # Dedupe: one execution (and one cache probe) per unique fingerprint.
    groups: Dict[str, List[int]] = {}
    for index, fingerprint in enumerate(fingerprints):
        groups.setdefault(fingerprint, []).append(index)

    campaign = _Campaign(scenarios, fingerprints, groups, cache_dir,
                         jrn, progress, retries)
    started = time.perf_counter()
    jitter = random.Random()
    try:
        run_queue: List[str] = []
        if jrn is not None:
            jrn.campaign_start(
                total=len(scenarios),
                unique=len(groups),
                jobs=jobs,
                retries=retries,
                timeout=timeout,
                cache_dir=cache_dir,
                resumed_from=resume,
            )
        for fingerprint in groups:
            cached = _load_cached(cache_dir, fingerprint) if cache_dir else None
            if cached is not None:
                campaign.complete_cached(
                    fingerprint, cached, resumed=fingerprint in resume_set
                )
            else:
                if fingerprint in resume_set:
                    # The journal says finished but the cache cannot
                    # serve it (evicted / store failed): recompute.
                    METRICS.incr("campaign.resume_misses")
                run_queue.append(fingerprint)

        if run_queue and jobs > 1 and len(run_queue) > 1:
            _run_pool(campaign, run_queue, jobs, timeout, backoff, jitter)
        else:
            _run_serial(campaign, run_queue, timeout, backoff, jitter)

        if jrn is not None:
            jrn.campaign_end(
                completed=len(scenarios) - len(campaign.failures),
                failed=len(campaign.failures),
                elapsed_s=time.perf_counter() - started,
            )
    finally:
        if owns_journal and jrn is not None:
            jrn.close()

    if campaign.failures and strict:
        raise CampaignError(campaign.failures, campaign.results)
    return campaign.results  # type: ignore[return-value]
