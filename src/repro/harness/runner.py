"""Parallel experiment execution engine.

Every simulation experiment in the harness is a set of independent
*cells*: one (workload, scheme, voltage, seed) simulation each.  This
module runs such sets — serially or fanned out over a process pool —
with three guarantees:

- **Determinism.**  Each cell derives everything it needs (fault map,
  trace, scheme RNG) from its own :class:`~repro.utils.rng.RngFactory`
  streams, which are pure functions of ``(seed, name)``.  A cell's
  result is therefore independent of which process runs it, in what
  order, and alongside which other cells: ``jobs=N`` is bit-identical
  to ``jobs=1``.
- **Ordered collection.**  ``run_cells`` returns results in input
  order regardless of completion order, with per-cell wall-clock
  timing and an optional progress callback.
- **Free re-runs.**  With ``cache_dir`` set, each finished cell is
  written to disk keyed by a fingerprint of its spec; re-running an
  unchanged cell loads the stored result instead of simulating.

Expensive deterministic inputs (fault maps, traces) are additionally
memoised per process, so cells sharing a (seed, workload) do not
rebuild them — and, on fork-based platforms, worker processes inherit
the parent's warm memo for free.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import asdict, dataclass
from functools import lru_cache
from typing import Callable, Iterable, List, Optional

from repro.cache.wbcache import WriteBackCache
from repro.faults import FaultMap
from repro.gpu import GpuSimulator
from repro.harness.results import PerfPoint
from repro.scenario.config import ScenarioConfig, as_scenario
from repro.scenario.schemes import (
    KILLI_RATIOS,
    LV_VOLTAGE,
    make_scheme,
    scheme_names,
)
from repro.traces import workload_trace
from repro.utils.rng import RngFactory

__all__ = [
    "CellSpec",
    "CellResult",
    "make_scheme",
    "scheme_names",
    "run_cell",
    "run_cells",
]

#: Bump when CellResult's serialised shape changes: invalidates every
#: on-disk cache entry written by an older layout.
SCHEMA_VERSION = 1


# -- memoised deterministic inputs -------------------------------------------


@lru_cache(maxsize=4)
def fault_map_for(n_lines: int, seed: int) -> FaultMap:
    """The (deterministic) chip fault map for an experiment seed.

    Derived from the seed's ``"fault-map"`` stream — the same map the
    serial runners always built — and memoised because every cell of a
    campaign shares it.  FaultMap is read-only after construction.
    """
    return FaultMap(n_lines=n_lines, rng=RngFactory(seed).stream("fault-map"))


@lru_cache(maxsize=32)
def trace_for(workload: str, accesses_per_cu: int, n_cus: int, seed: int):
    """The (deterministic) kernel trace for a (workload, seed) pair.

    Derived from the seed's ``"trace/<workload>"`` stream; memoised
    because every scheme cell of a workload replays the same trace.
    Traces are read-only (the engine copies them into flat arrays).
    """
    return workload_trace(
        workload,
        accesses_per_cu,
        n_cus=n_cus,
        rng=RngFactory(seed).stream(f"trace/{workload}"),
    )


# -- cell specification and result -------------------------------------------


@dataclass(frozen=True)
class CellSpec:
    """One independent experiment cell (compatibility shim).

    The typed schema now lives in
    :class:`~repro.scenario.config.ScenarioConfig`; ``CellSpec`` keeps
    the historical flat call shape and delegates normalisation and
    fingerprinting to its scenario projection, so the two construction
    paths can never drift apart.  The tuple (workload, scheme, voltage,
    seed, accesses_per_cu, scheme_config, write_back) fully determines
    the simulation via named RNG streams; ``engine`` picks the inner
    loop and ``substrate`` the tag/LRU backing, but neither changes the
    numbers (all combinations are pinned bit-equivalent), so both are
    excluded from the cache fingerprint.
    """

    workload: str
    scheme: str
    voltage: float = LV_VOLTAGE
    seed: int = 42
    accesses_per_cu: int = 30000
    scheme_config: tuple = ()
    """KilliConfig overrides as sorted (field, value) pairs; pass a
    plain dict — it is normalised on construction."""
    write_back: bool = False
    engine: str = "vectorized"
    substrate: Optional[str] = None
    """Tag/LRU substrate ("object" / "soa"); None = session default."""

    def __post_init__(self):
        if isinstance(self.scheme_config, dict):
            object.__setattr__(
                self, "scheme_config", tuple(sorted(self.scheme_config.items()))
            )
        else:
            object.__setattr__(self, "scheme_config", tuple(self.scheme_config))

    @property
    def scheme_overrides(self) -> dict:
        return dict(self.scheme_config)

    def to_scenario(self) -> ScenarioConfig:
        """The typed scenario equivalent of this cell."""
        return ScenarioConfig.from_cell_spec(self)

    def fingerprint(self) -> str:
        """Stable content key for the on-disk result cache.

        Delegates to the scenario's canonical fingerprint, which is
        byte-compatible with the payload this class used to hash —
        pre-existing result caches stay warm.
        """
        return self.to_scenario().fingerprint()


@dataclass
class CellResult:
    """Metrics of one finished cell (plain data; JSON-serialisable)."""

    workload: str
    scheme: str
    voltage: float
    seed: int
    cycles: int
    instructions: int
    l2: dict
    """Full L2 counter dict (``CacheStats.as_dict()``)."""
    memory_reads: int
    memory_writes: int
    disabled_fraction: float = 0.0
    sdc_events: int = 0
    dfh: Optional[dict] = None
    """DFH-state histogram (Killi schemes only)."""
    dfh_lines: int = 0
    elapsed_s: float = 0.0
    from_cache: bool = False
    fingerprint: str = ""

    @property
    def l2_misses(self) -> int:
        return self.l2["read_misses"] + self.l2["write_misses"]

    @property
    def l2_mpki(self) -> float:
        if self.instructions <= 0:
            return 0.0
        return 1000.0 * self.l2_misses / self.instructions

    def to_perf_point(self) -> PerfPoint:
        """Project onto the Figure 4/5 matrix cell type."""
        return PerfPoint(
            workload=self.workload,
            scheme=self.scheme,
            cycles=self.cycles,
            instructions=self.instructions,
            l2_misses=self.l2_misses,
            error_induced_misses=self.l2.get("error_induced_misses", 0),
            ecc_evict_invalidations=self.l2.get("ecc_evict_invalidations", 0),
            memory_reads=self.memory_reads,
            memory_writes=self.memory_writes,
        )

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        return cls(**data)


# -- cell execution -----------------------------------------------------------


def run_cell(spec) -> CellResult:
    """Execute one cell: fresh GPU, deterministic inputs, full metrics.

    ``spec`` may be a legacy :class:`CellSpec` or a
    :class:`~repro.scenario.config.ScenarioConfig`; both normalise to
    the same scenario and produce bit-identical results.  Pure function
    of ``spec``: reproduces exactly what the serial Figure 4/5 loop
    computed for the same (workload, scheme, voltage, seed) — same
    fault-map stream, same trace stream, same per-cell scheme RNG
    namespace.
    """
    scenario = as_scenario(spec)
    workload = scenario.workload.name
    scheme_name = scenario.scheme.name
    voltage = scenario.fault.voltage
    seed = scenario.fault.seed
    gpu_config = scenario.gpu.to_gpu_config()
    fault_map = fault_map_for(gpu_config.l2.n_lines, seed)
    trace = trace_for(
        workload, scenario.workload.accesses_per_cu, gpu_config.n_cus, seed
    )
    rngs = RngFactory(seed).child(f"{workload}/{scheme_name}")
    scheme = make_scheme(
        scheme_name,
        gpu_config,
        fault_map,
        voltage,
        rngs,
        scheme_config=scenario.scheme.overrides or None,
        write_back=scenario.scheme.write_back,
    )
    simulator = GpuSimulator(
        gpu_config,
        scheme,
        engine=scenario.engine.engine,
        substrate=scenario.engine.substrate,
    )
    if scenario.scheme.write_back:
        simulator.l2 = WriteBackCache(
            gpu_config.l2,
            scheme,
            gpu_config.l2_latencies,
            substrate=simulator.substrate,
        )

    started = time.perf_counter()
    result = simulator.run(trace)
    elapsed = time.perf_counter() - started

    dfh = scheme.dfh_histogram() if hasattr(scheme, "dfh_histogram") else None
    return CellResult(
        workload=workload,
        scheme=scheme_name,
        voltage=voltage,
        seed=seed,
        cycles=result.cycles,
        instructions=result.instructions,
        l2=result.l2_stats.as_dict(),
        memory_reads=simulator.l2.memory_reads,
        memory_writes=simulator.l2.memory_writes,
        disabled_fraction=(
            scheme.disabled_fraction()
            if hasattr(scheme, "disabled_fraction")
            else 0.0
        ),
        sdc_events=getattr(scheme, "sdc_events", 0),
        dfh=dfh,
        dfh_lines=len(scheme.dfh) if hasattr(scheme, "dfh") else 0,
        elapsed_s=elapsed,
        fingerprint=scenario.fingerprint(),
    )


# -- on-disk result cache ------------------------------------------------------


def _cache_path(cache_dir: str, scenario: ScenarioConfig) -> str:
    return os.path.join(cache_dir, f"{scenario.fingerprint()}.json")


def _load_cached(cache_dir: str, scenario: ScenarioConfig) -> Optional[CellResult]:
    """Load a cached result; None on miss or any corruption."""
    path = _cache_path(cache_dir, scenario)
    try:
        with open(path) as handle:
            payload = json.load(handle)
        if payload.get("schema") != SCHEMA_VERSION:
            return None
        result = CellResult.from_dict(payload["result"])
    except (OSError, ValueError, KeyError, TypeError):
        return None
    result.from_cache = True
    return result


def _store_cached(
    cache_dir: str, scenario: ScenarioConfig, result: CellResult
) -> None:
    """Atomically persist a result (rename tolerates parallel writers)."""
    os.makedirs(cache_dir, exist_ok=True)
    payload = {
        "schema": SCHEMA_VERSION,
        "spec": scenario.to_dict(),
        "result": result.to_dict(),
    }
    fd, tmp_path = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle)
        os.replace(tmp_path, _cache_path(cache_dir, scenario))
    except OSError:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass


# -- campaign execution --------------------------------------------------------

ProgressFn = Callable[[int, int, CellResult], None]


def run_cells(
    specs: Iterable,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress: Optional[ProgressFn] = None,
) -> List[CellResult]:
    """Run a set of cells, optionally in parallel and/or cached.

    Parameters
    ----------
    specs:
        Cells to run — legacy :class:`CellSpec` objects,
        :class:`~repro.scenario.config.ScenarioConfig` scenarios, or a
        mix.  Results come back in the same order.
    jobs:
        Worker processes; ``1`` runs in-process (no pool).  Results
        are bit-identical either way.
    cache_dir:
        Directory for the fingerprint-keyed result cache.  Finished
        cells are stored there; unchanged cells are re-loaded for free
        (``CellResult.from_cache`` marks them).
    progress:
        ``progress(done, total, result)`` called after every cell
        (cached hits included), in completion order.
    """
    scenarios = [as_scenario(spec) for spec in specs]
    total = len(scenarios)
    results: List[Optional[CellResult]] = [None] * total
    done = 0

    pending: List[int] = []
    for index, scenario in enumerate(scenarios):
        cached = _load_cached(cache_dir, scenario) if cache_dir else None
        if cached is not None:
            results[index] = cached
            done += 1
            if progress:
                progress(done, total, cached)
        else:
            pending.append(index)

    if pending and jobs > 1 and len(pending) > 1:
        # Warm the shared fault maps before forking so workers inherit
        # them (copy-on-write) instead of each resampling the chip.
        for gpu, seed in {
            (scenarios[i].gpu, scenarios[i].fault.seed) for i in pending
        }:
            fault_map_for(gpu.to_gpu_config().l2.n_lines, seed)
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {pool.submit(run_cell, scenarios[i]): i for i in pending}
            for future in as_completed(futures):
                index = futures[future]
                result = future.result()
                results[index] = result
                if cache_dir:
                    _store_cached(cache_dir, scenarios[index], result)
                done += 1
                if progress:
                    progress(done, total, result)
    else:
        for index in pending:
            result = run_cell(scenarios[index])
            results[index] = result
            if cache_dir:
                _store_cached(cache_dir, scenarios[index], result)
            done += 1
            if progress:
                progress(done, total, result)

    return results  # type: ignore[return-value]
