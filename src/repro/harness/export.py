"""CSV export for experiment results.

Every runner in :mod:`repro.harness.experiments` returns plain data;
these helpers serialise them so results can be archived (see
``results/``) or plotted externally.
"""

from __future__ import annotations

import csv
import io
from typing import Mapping

from repro.harness.results import PerformanceMatrix

__all__ = [
    "series_to_csv",
    "nested_table_to_csv",
    "matrix_to_csv",
    "cells_to_csv",
    "write_csv",
]


def series_to_csv(data: Mapping, x_key: str = "voltage") -> str:
    """Serialise a {series_name: [values]} dict (fig1/fig2/fig6 shape)."""
    keys = [x_key] + [k for k in data if k != x_key]
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(keys)
    for row in zip(*(data[k] for k in keys)):
        writer.writerow(row)
    return out.getvalue()


def nested_table_to_csv(data: Mapping, row_label: str = "row") -> str:
    """Serialise a {row: {column: value}} dict (table4/table5 shape)."""
    rows = list(data)
    columns: list = []
    for row in rows:
        for column in data[row]:
            if column not in columns:
                columns.append(column)
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow([row_label] + columns)
    for row in rows:
        writer.writerow([row] + [data[row].get(c, "") for c in columns])
    return out.getvalue()


def matrix_to_csv(matrix: PerformanceMatrix) -> str:
    """Serialise a Figure 4/5 matrix: one row per (workload, scheme)."""
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        ["workload", "scheme", "cycles", "normalized_time", "instructions",
         "l2_misses", "mpki", "error_induced_misses",
         "ecc_evict_invalidations", "memory_reads", "memory_writes"]
    )
    for workload in matrix.workloads():
        for scheme, point in matrix.points[workload].items():
            writer.writerow([
                workload, scheme, point.cycles,
                f"{matrix.normalized_time(workload, scheme):.6f}",
                point.instructions, point.l2_misses, f"{point.mpki:.4f}",
                point.error_induced_misses, point.ecc_evict_invalidations,
                point.memory_reads, point.memory_writes,
            ])
    return out.getvalue()


def cells_to_csv(cells) -> str:
    """Serialise runner :class:`~repro.harness.runner.CellResult` rows.

    One row per cell with the identifying axes, the headline metrics
    and *every* L2 counter (``CacheStats.as_dict`` is complete, so the
    column set is the union over cells — scheme-specific extras
    included).
    """
    cells = list(cells)
    l2_columns: list = []
    for cell in cells:
        for column in cell.l2:
            if column not in l2_columns:
                l2_columns.append(column)
    out = io.StringIO()
    writer = csv.writer(out)
    writer.writerow(
        ["workload", "scheme", "voltage", "seed", "cycles", "instructions",
         "l2_mpki", "memory_reads", "memory_writes", "disabled_fraction",
         "sdc_events", "elapsed_s", "from_cache"]
        + [f"l2_{c}" for c in l2_columns]
    )
    for cell in cells:
        writer.writerow(
            [cell.workload, cell.scheme, cell.voltage, cell.seed,
             cell.cycles, cell.instructions, f"{cell.l2_mpki:.4f}",
             cell.memory_reads, cell.memory_writes,
             f"{cell.disabled_fraction:.6f}", cell.sdc_events,
             f"{cell.elapsed_s:.3f}", int(cell.from_cache)]
            + [cell.l2.get(c, "") for c in l2_columns]
        )
    return out.getvalue()


def write_csv(path: str, content: str) -> None:
    """Write serialised CSV content to ``path``."""
    with open(path, "w", newline="") as handle:
        handle.write(content)
