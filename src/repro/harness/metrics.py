"""Deprecated alias of :mod:`repro.metrics`.

The harness-level telemetry facade merged into the unified
:mod:`repro.metrics` namespace; this shim keeps
``from repro.harness.metrics import METRICS`` sites working while
emitting a :class:`DeprecationWarning`.

Counters and timers recorded by the built-in instrumentation are
documented in ``docs/campaign-robustness.md``.
"""

from __future__ import annotations

import warnings

from repro.metrics.telemetry import METRICS, Metrics, TELEMETRY_ENV

__all__ = ["Metrics", "METRICS", "TELEMETRY_ENV"]

warnings.warn(
    "repro.harness.metrics is deprecated; import from repro.metrics instead",
    DeprecationWarning,
    stacklevel=2,
)
