"""Telemetry facade for the experiment harness.

The implementation lives in :mod:`repro.utils.metrics` so that lower
layers (the GPU engine's phase timers, the result-cache path) can
record into the same process-wide sink without importing the harness
package; this module is the harness-level name campaigns and the CLI
use.

Counters and timers recorded by the built-in instrumentation are
documented in ``docs/campaign-robustness.md``.  Everything is off by
default; enable with ``METRICS.enable()``, the ``--telemetry`` CLI
flag, or the ``REPRO_TELEMETRY`` environment variable.
"""

from __future__ import annotations

from repro.utils.metrics import METRICS, Metrics, TELEMETRY_ENV

__all__ = ["Metrics", "METRICS", "TELEMETRY_ENV"]
