"""Per-figure / per-table experiment runners.

Every runner returns plain dict/series data (so tests and benchmarks
can assert on it) and is registered in :data:`EXPERIMENTS` for the
CLI.  Simulation-based runners accept an ``accesses_per_cu`` scale so
benchmarks can run them at reduced size.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

import numpy as np

from repro.analysis.area import AreaModel
from repro.analysis.coverage import CoverageModel
from repro.analysis.power import PowerModel
from repro.core import KilliConfig, KilliScheme
from repro.faults import CellFaultModel, FaultMap, FaultMechanism, LineFaultModel
from repro.harness.results import PerformanceMatrix
from repro.harness.runner import (
    LV_VOLTAGE,
    make_scheme,
    run_cells,
    scheme_names,
)
from repro.scenario.config import cell_scenario
from repro.scenario.schemes import KILLI_RATIOS, resolve_scheme
from repro.traces import workload_names
from repro.utils.rng import RngFactory

__all__ = [
    "EXPERIMENTS",
    "run_experiment",
    "make_scheme",
    "scheme_names",
    "fig1_cell_pfail",
    "fig2_line_distribution",
    "fig4_fig5_performance",
    "fig6_coverage",
    "table4_strong_ecc",
    "table5_area",
    "table6_power",
    "table7_olsc",
    "sec55_lower_vmin",
]


# -- Figure 1 -------------------------------------------------------------------


def fig1_cell_pfail(voltages=None, freqs=(0.4, 1.0)) -> dict:
    """Figure 1: cell failure probability vs normalized voltage.

    Returns one series per (mechanism, frequency).
    """
    if voltages is None:
        voltages = [round(v, 4) for v in np.arange(0.5, 0.775, 0.025)]
    model = CellFaultModel()
    series = {"voltage": list(voltages)}
    for freq in freqs:
        for mechanism in (FaultMechanism.WRITEABILITY, FaultMechanism.READ_DISTURB):
            key = f"{mechanism.value}@{freq:g}GHz"
            series[key] = [model.p_cell(v, freq, mechanism) for v in voltages]
    return series


# -- Figure 2 -------------------------------------------------------------------


def fig2_line_distribution(voltages=None, line_bits: int = 512) -> dict:
    """Figure 2: % of lines with 0 / 1 / 2+ faults vs voltage."""
    if voltages is None:
        voltages = [round(v, 4) for v in np.arange(0.55, 0.725, 0.025)]
    model = LineFaultModel(CellFaultModel(), line_bits=line_bits)
    zero, one, two_plus = [], [], []
    for v in voltages:
        fractions = model.fractions(v)
        zero.append(100.0 * fractions["zero"])
        one.append(100.0 * fractions["one"])
        two_plus.append(100.0 * fractions["two_plus"])
    return {
        "voltage": list(voltages),
        "zero": zero,
        "one": one,
        "two_plus": two_plus,
    }


# -- Figures 4 and 5 --------------------------------------------------------------


def fig4_fig5_performance(
    workloads: Iterable[str] | None = None,
    schemes: Iterable[str] | None = None,
    accesses_per_cu: int = 30000,
    seed: int = 42,
    voltage: float = LV_VOLTAGE,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    progress=None,
    engine: str = "vectorized",
    substrate: Optional[str] = None,
    retries: int = 0,
    timeout: Optional[float] = None,
    journal=None,
    resume=None,
) -> PerformanceMatrix:
    """Run the Figure 4/5 (workload x scheme) simulation matrix.

    One shared fault map (one chip), one trace per workload, one fresh
    GPU per (workload, scheme) cell.  Cells go through the parallel
    runner: ``jobs`` fans them out over processes, ``cache_dir``
    enables the on-disk result cache, and both are bit-identical to
    the serial uncached run.  ``engine`` and ``substrate`` pick the
    inner loop and the tag/LRU backing; every combination is pinned
    bit-equivalent, so neither changes the numbers.  ``retries``,
    ``timeout``, ``journal`` and ``resume`` are the campaign-hardening
    knobs of :func:`~repro.harness.runner.run_cells`.
    """
    workloads = list(workloads) if workloads is not None else workload_names()
    schemes = list(schemes) if schemes is not None else scheme_names()
    if "baseline" not in schemes:
        schemes = ["baseline"] + schemes
    for scheme in schemes:
        resolve_scheme(scheme)  # fail fast, before any cell simulates
    specs = [
        cell_scenario(
            workload,
            scheme,
            voltage=voltage,
            seed=seed,
            accesses_per_cu=accesses_per_cu,
            engine=engine,
            substrate=substrate,
        )
        for workload in workloads
        for scheme in schemes
    ]
    matrix = PerformanceMatrix()
    cells = run_cells(
        specs,
        jobs=jobs,
        cache_dir=cache_dir,
        progress=progress,
        retries=retries,
        timeout=timeout,
        journal=journal,
        resume=resume,
    )
    for cell in cells:
        matrix.add(cell.to_perf_point())
    return matrix


# -- Figure 6 -------------------------------------------------------------------


def fig6_coverage(voltages=None) -> dict:
    """Figure 6: % of lines classified correctly, per technique."""
    if voltages is None:
        voltages = [round(v, 4) for v in np.arange(0.525, 0.675, 0.0125)]
    model = CoverageModel()
    table = model.coverage_table(voltages)
    return {
        key: [100.0 * x for x in values] if key != "voltage" else values
        for key, values in table.items()
    }


# -- Tables -------------------------------------------------------------------


def table4_strong_ecc() -> dict:
    """Table 4: Killi area with DECTED / TECQED / 6EC7ED vs SECDED."""
    return AreaModel().table4()


def table5_area() -> dict:
    """Table 5: area across protection schemes."""
    return AreaModel().table5()


def table6_power(
    matrix: PerformanceMatrix | None = None, voltage: float = LV_VOLTAGE
) -> dict:
    """Table 6: normalized power per technique.

    When a performance matrix is supplied, each scheme's measured
    extra memory traffic (averaged over workloads) feeds the model;
    otherwise the traffic term is zero (its Table 6 contribution is
    fractions of a point).
    """
    model = PowerModel()

    def extra_mem(scheme: str) -> float:
        if matrix is None:
            return 0.0
        values = [
            matrix.extra_memory_frac(w, scheme)
            for w in matrix.workloads()
            if scheme in matrix.points[w]
        ]
        return float(np.mean(values)) if values else 0.0

    out = {
        "dected": model.scheme_power("dected", voltage, extra_memory_frac=extra_mem("dected")),
        "msecc": model.scheme_power("msecc", voltage, extra_memory_frac=extra_mem("msecc")),
        "flair": model.scheme_power("flair", voltage, extra_memory_frac=extra_mem("flair")),
    }
    for ratio in KILLI_RATIOS:
        out[f"killi_1:{ratio}"] = model.scheme_power(
            "killi",
            voltage,
            ecc_ratio=ratio,
            extra_memory_frac=extra_mem(f"killi_1:{ratio}"),
        )
    return out


def table7_olsc() -> dict:
    """Table 7: Killi w/OLSC vs MS-ECC at 0.6 and 0.575 VDD.

    Capacity targets come from the line fault model (% lines with <=11
    faults); Killi's ECC cache is sized 1:8 at 0.6 and 1:2 at 0.575 as
    in the paper.
    """
    area = AreaModel()
    lines = LineFaultModel(CellFaultModel(), line_bits=523)
    return {
        "0.600": {
            "capacity_pct": 100.0 * lines.p_at_most(0.600, 11),
            "killi_vs_msecc": area.table7_killi_vs_msecc(olsc_t=11, ecc_ratio=8),
        },
        "0.575": {
            "capacity_pct": 100.0 * lines.p_at_most(0.575, 11),
            "killi_vs_msecc": area.table7_killi_vs_msecc(olsc_t=11, ecc_ratio=2),
        },
    }


# -- Section 5.5: optimizing for lower Vmin ---------------------------------


def sec55_lower_vmin(
    voltage: float = 0.600,
    workload: str = "nekbone",
    accesses_per_cu: int = 8000,
    seed: int = 42,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    retries: int = 0,
    timeout: Optional[float] = None,
    journal=None,
    resume=None,
) -> dict:
    """Section 5.5: Killi with OLSC vs MS-ECC below the SECDED Vmin.

    At 0.600xVDD plain (SECDED-based) Killi loses most of the cache —
    ~92% of lines have 2+ faults — while Killi with an OLSC-t11 ECC
    cache (1:8) retains MS-ECC-class capacity at a fraction of the
    area.  Returns per-scheme normalized time, MPKI and disabled
    capacity.  The four scheme cells go through the parallel runner.
    """
    key_to_scheme = {
        "baseline": "baseline",
        "msecc": "msecc",
        "killi_secded_1:8": "killi_1:8",
        "killi_olsc_1:8": "killi+olsc-t11_1:8",
    }
    specs = [
        cell_scenario(
            workload,
            scheme,
            voltage=voltage,
            seed=seed,
            accesses_per_cu=accesses_per_cu,
        )
        for scheme in key_to_scheme.values()
    ]
    cells = run_cells(
        specs,
        jobs=jobs,
        cache_dir=cache_dir,
        retries=retries,
        timeout=timeout,
        journal=journal,
        resume=resume,
    )

    out = {"voltage": voltage, "workload": workload}
    for key, cell in zip(key_to_scheme, cells):
        out[key] = {
            "cycles": cell.cycles,
            "mpki": cell.l2_mpki,
            "disabled_fraction": cell.disabled_fraction,
        }
    base = out["baseline"]["cycles"]
    for key in ("msecc", "killi_secded_1:8", "killi_olsc_1:8"):
        out[key]["normalized_time"] = out[key]["cycles"] / base
    return out


# -- soft-error campaign (Section 2.3 / 5.3 reliability claim) ---------------


def soft_error_campaign(
    rate_per_access: float = 0.02,
    accesses: int = 60000,
    voltage: float = LV_VOLTAGE,
    seed: int = 42,
    cache_kib: int = 256,
) -> dict:
    """Compare Killi and SECDED-only (FLAIR steady state) under soft errors.

    Injects multi-bit-capable soft-error bursts at an exaggerated rate
    and counts silent data corruptions (SDC) and detected-
    uncorrectable refetches (DUE).  The paper's claim: FLAIR's
    exclusive reliance on SECDED after training cannot detect a
    multi-bit soft error landing on a line that already has an LV
    fault, while Killi's independent segmented parity usually can.
    """
    from repro.baselines.functional import FunctionalSecDedLineScheme
    from repro.cache.geometry import CacheGeometry
    from repro.cache.core import WriteThroughCache
    from repro.faults.soft_errors import SoftErrorInjector

    rngs = RngFactory(seed)
    geometry = CacheGeometry(
        size_bytes=cache_kib * 1024, line_bytes=64, associativity=16
    )
    fault_map = FaultMap(n_lines=geometry.n_lines, rng=rngs.stream("fault-map"))
    footprint = geometry.size_bytes * 3 // 2

    def run(label, scheme):
        cache = WriteThroughCache(geometry, scheme)
        rng = rngs.stream(f"traffic/{label}")
        addrs = rng.integers(0, footprint, size=accesses)
        stores = rng.random(accesses) < 0.2
        for addr, is_store in zip(addrs, stores):
            addr = int(addr) & ~63
            if is_store:
                cache.write(addr)
            else:
                cache.read(addr)
        return cache

    killi_scheme = KilliScheme(
        geometry, fault_map, voltage, KilliConfig(ecc_ratio=32),
        rng=rngs.stream("mask-killi"),
        soft_injector=SoftErrorInjector(
            rate_per_access, rng=rngs.stream("soft-killi")
        ),
    )
    killi_cache = run("killi", killi_scheme)

    flair_scheme = FunctionalSecDedLineScheme(
        geometry, fault_map, voltage,
        rng=rngs.stream("mask-flair"),
        soft_injector=SoftErrorInjector(
            rate_per_access, rng=rngs.stream("soft-flair")
        ),
    )
    flair_cache = run("flair", flair_scheme)

    return {
        "rate_per_access": rate_per_access,
        "accesses": accesses,
        "killi": {
            "sdc": killi_scheme.sdc_events,
            "detected": killi_cache.stats.error_induced_misses,
            "corrected": killi_cache.stats.corrected_reads,
        },
        "flair": {
            "sdc": flair_scheme.sdc_events,
            "detected": flair_cache.stats.error_induced_misses,
            "corrected": flair_cache.stats.corrected_reads,
        },
    }


#: Registry for the CLI: name -> zero-argument runner.
EXPERIMENTS: Dict[str, object] = {
    "fig1": fig1_cell_pfail,
    "fig2": fig2_line_distribution,
    "fig4": fig4_fig5_performance,
    "fig5": fig4_fig5_performance,
    "fig6": fig6_coverage,
    "table4": table4_strong_ecc,
    "table5": table5_area,
    "table6": table6_power,
    "table7": table7_olsc,
    "sec55": sec55_lower_vmin,
    "softerr": soft_error_campaign,
}


def run_experiment(name: str, **kwargs):
    """Run a registered experiment by name."""
    try:
        runner = EXPERIMENTS[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; known: {sorted(EXPERIMENTS)}"
        ) from None
    return runner(**kwargs)
