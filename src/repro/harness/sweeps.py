"""Voltage-sweep performance runner.

Complements the fixed-0.625 Figure 4/5 matrix: runs one workload under
Killi across a range of voltages, reporting the performance overhead,
the disabled-capacity fraction, and the power saving at each point —
the Vmin trade-off curve an adopter would actually consult.

The per-voltage cells go through :mod:`repro.harness.runner`, so the
sweep parallelises (``jobs``) and caches (``cache_dir``) like every
other campaign.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.analysis.power import PowerModel
from repro.gpu import GpuConfig
from repro.harness.runner import fault_map_for, run_cells
from repro.scenario.config import cell_scenario

__all__ = ["voltage_sweep"]


def voltage_sweep(
    voltages: Iterable[float] = (0.7, 0.675, 0.65, 0.625, 0.615),
    workload: str = "lulesh",
    ecc_ratio: int = 64,
    accesses_per_cu: int = 5000,
    seed: int = 42,
    jobs: int = 1,
    cache_dir: Optional[str] = None,
    retries: int = 0,
    timeout: Optional[float] = None,
    journal=None,
    resume=None,
) -> Dict[float, Dict]:
    """Killi's overhead/capacity/power across operating voltages.

    Returns ``{voltage: {"normalized_time", "mpki", "disabled_fraction",
    "power_pct"}}``.  Voltages below the fault-map floor are rejected
    with :class:`ValueError` before any simulation runs.  ``retries``,
    ``timeout``, ``journal`` and ``resume`` pass through to the
    fault-tolerant campaign runner.
    """
    voltages = list(voltages)
    gpu_config = GpuConfig()
    fault_map = fault_map_for(gpu_config.l2.n_lines, seed)
    below = sorted(v for v in voltages if v < fault_map.floor_voltage)
    if below:
        raise ValueError(
            f"voltages {below} are below the fault-map floor "
            f"{fault_map.floor_voltage}"
        )

    scheme = f"killi_1:{ecc_ratio}"
    specs = [
        cell_scenario(
            workload,
            "baseline",
            voltage=fault_map.floor_voltage,
            seed=seed,
            accesses_per_cu=accesses_per_cu,
        )
    ] + [
        cell_scenario(
            workload,
            scheme,
            voltage=voltage,
            seed=seed,
            accesses_per_cu=accesses_per_cu,
        )
        for voltage in voltages
    ]
    cells = run_cells(
        specs,
        jobs=jobs,
        cache_dir=cache_dir,
        retries=retries,
        timeout=timeout,
        journal=journal,
        resume=resume,
    )
    baseline, killi_cells = cells[0], cells[1:]
    power_model = PowerModel()

    out: Dict[float, Dict] = {}
    for voltage, cell in zip(voltages, killi_cells):
        out[voltage] = {
            "normalized_time": cell.cycles / baseline.cycles,
            "mpki": cell.l2_mpki,
            "disabled_fraction": cell.disabled_fraction,
            "power_pct": power_model.scheme_power(
                "killi", voltage, ecc_ratio=ecc_ratio
            ),
        }
    return out
