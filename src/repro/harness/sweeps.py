"""Voltage-sweep performance runner.

Complements the fixed-0.625 Figure 4/5 matrix: runs one workload under
Killi across a range of voltages, reporting the performance overhead,
the disabled-capacity fraction, and the power saving at each point —
the Vmin trade-off curve an adopter would actually consult.
"""

from __future__ import annotations

from typing import Dict, Iterable

from repro.analysis.power import PowerModel
from repro.cache.protection import UnprotectedScheme
from repro.core import KilliConfig, KilliScheme
from repro.faults import FaultMap
from repro.gpu import GpuConfig, GpuSimulator
from repro.traces import workload_trace
from repro.utils.rng import RngFactory

__all__ = ["voltage_sweep"]


def voltage_sweep(
    voltages: Iterable[float] = (0.7, 0.675, 0.65, 0.625, 0.615),
    workload: str = "lulesh",
    ecc_ratio: int = 64,
    accesses_per_cu: int = 5000,
    seed: int = 42,
) -> Dict[float, Dict]:
    """Killi's overhead/capacity/power across operating voltages.

    Returns ``{voltage: {"normalized_time", "mpki", "disabled_fraction",
    "power_pct"}}``.  Voltages below the fault-map floor are rejected.
    """
    rngs = RngFactory(seed)
    gpu_config = GpuConfig()
    fault_map = FaultMap(n_lines=gpu_config.l2.n_lines, rng=rngs.stream("fault-map"))
    trace = workload_trace(
        workload, accesses_per_cu, n_cus=gpu_config.n_cus,
        rng=rngs.stream(f"trace/{workload}"),
    )
    baseline = GpuSimulator(gpu_config, UnprotectedScheme()).run(trace)
    power_model = PowerModel()

    out: Dict[float, Dict] = {}
    for voltage in voltages:
        scheme = KilliScheme(
            gpu_config.l2, fault_map, voltage, KilliConfig(ecc_ratio=ecc_ratio),
            rng=rngs.stream(f"mask/{voltage}"),
        )
        result = GpuSimulator(gpu_config, scheme).run(trace)
        out[voltage] = {
            "normalized_time": result.cycles / baseline.cycles,
            "mpki": result.l2_mpki,
            "disabled_fraction": scheme.disabled_fraction(),
            "power_pct": power_model.scheme_power(
                "killi", voltage, ecc_ratio=ecc_ratio
            ),
        }
    return out
