"""Append-only JSONL run journal for simulation campaigns.

Every campaign through :func:`repro.harness.runner.run_cells` can
stream one JSON record per line to a *run journal*: a ``start`` record
when the campaign begins, an ``attempt`` record for every failed
execution attempt, a ``cell`` record when a cell reaches a terminal
state (``ok`` / ``retried`` / ``cached`` / ``failed``), and an ``end``
record with the final tally.  The file is append-only and flushed per
record, so a campaign killed mid-flight leaves a readable prefix (plus
at most one truncated line, which :func:`read_journal` tolerates).

The journal serves two purposes:

- **Observability** — which cells ran where (worker pid), how long
  they took, how many attempts they needed, and exactly how each
  failure looked (exception type + message).
- **Resumability** — :func:`finished_fingerprints` extracts the set of
  successfully finished cell fingerprints; ``run_cells(resume=path)``
  uses it so a re-run recomputes only unfinished cells, loading the
  finished ones from the result cache.

Journal records are observability data: they carry wall-clock
timestamps and host/pid details and are *not* part of any result
fingerprint — simulation outputs remain bit-identical with or without
a journal attached.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import asdict, dataclass
from typing import Iterator, List, Optional, Set

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "SUCCESS_STATUSES",
    "CellFailure",
    "RunJournal",
    "read_journal",
    "finished_fingerprints",
]

#: Bump when the record layout changes incompatibly.
JOURNAL_SCHEMA_VERSION = 1

#: Terminal cell statuses that count as "finished" for resume purposes.
SUCCESS_STATUSES = frozenset({"ok", "retried", "cached"})


@dataclass
class CellFailure:
    """A cell that permanently failed (all retry attempts exhausted).

    Surfaced on :class:`~repro.harness.runner.CampaignError` at the end
    of the campaign — after every other cell has finished and been
    cached/journaled — instead of aborting the run at the first crash.
    """

    index: int
    """Position of the cell in the campaign's spec list."""
    fingerprint: str
    attempts: int
    """Execution attempts consumed (1 + retries used)."""
    error_type: str
    """Exception class name of the last attempt's failure."""
    message: str
    elapsed_s: float = 0.0
    """Wall clock of the last attempt (0.0 when unknown, e.g. a pool
    crash where the worker died before reporting)."""

    def to_dict(self) -> dict:
        return asdict(self)

    def __str__(self) -> str:
        return (
            f"cell {self.index} ({self.fingerprint[:12]}) failed after "
            f"{self.attempts} attempt(s): {self.error_type}: {self.message}"
        )


class RunJournal:
    """Append-only JSONL event sink for one (or more) campaigns.

    Open with a path (parent directories are created) or pass an
    already-open instance into ``run_cells`` — the runner only closes
    journals it opened itself, so several campaigns can share a file.
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        parent = os.path.dirname(self.path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    # -- low-level -----------------------------------------------------------

    def write(self, record: dict) -> None:
        """Append one record (a ``ts`` wall-clock stamp is added)."""
        record = {"ts": round(time.time(), 3), **record}
        self._handle.write(json.dumps(record) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- campaign events -----------------------------------------------------

    def campaign_start(
        self,
        *,
        total: int,
        unique: int,
        cached: int = 0,
        jobs: int = 1,
        retries: int = 0,
        timeout: Optional[float] = None,
        cache_dir: Optional[str] = None,
        resumed_from: Optional[str] = None,
    ) -> None:
        record = {
            "event": "start",
            "schema": JOURNAL_SCHEMA_VERSION,
            "pid": os.getpid(),
            "total": total,
            "unique": unique,
            "jobs": jobs,
            "retries": retries,
        }
        if timeout is not None:
            record["timeout_s"] = timeout
        if cache_dir is not None:
            record["cache_dir"] = os.fspath(cache_dir)
        if resumed_from is not None:
            record["resumed_from"] = os.fspath(resumed_from)
        self.write(record)

    def cell(
        self,
        *,
        index: int,
        fingerprint: str,
        status: str,
        attempts: int,
        elapsed_s: float,
        pid: Optional[int] = None,
        cache: Optional[str] = None,
        error: Optional[dict] = None,
        dedup_of: Optional[int] = None,
        resumed: bool = False,
    ) -> None:
        """Terminal record for one cell.

        ``status`` is ``ok`` (first attempt succeeded), ``retried``
        (succeeded after >= 1 failed attempt), ``cached`` (loaded from
        the result cache) or ``failed`` (attempts exhausted).
        ``cache`` records the result-cache interaction: ``hit`` /
        ``miss`` / ``stored`` / ``store-failed`` / ``corrupt``.
        """
        record = {
            "event": "cell",
            "index": index,
            "fingerprint": fingerprint,
            "status": status,
            "attempts": attempts,
            "elapsed_s": round(elapsed_s, 6),
        }
        if pid is not None:
            record["pid"] = pid
        if cache is not None:
            record["cache"] = cache
        if error is not None:
            record["error"] = error
        if dedup_of is not None:
            record["dedup_of"] = dedup_of
        if resumed:
            record["resumed"] = True
        self.write(record)

    def attempt(
        self,
        *,
        index: int,
        fingerprint: str,
        attempt: int,
        error_type: str,
        message: str,
        will_retry: bool,
        elapsed_s: float = 0.0,
    ) -> None:
        """One failed execution attempt (successes only log ``cell``)."""
        self.write({
            "event": "attempt",
            "index": index,
            "fingerprint": fingerprint,
            "attempt": attempt,
            "error": {"type": error_type, "message": message},
            "will_retry": will_retry,
            "elapsed_s": round(elapsed_s, 6),
        })

    def pool_broken(self, message: str) -> None:
        """The worker pool crashed and is being rebuilt."""
        self.write({"event": "pool_broken", "message": message})

    def campaign_end(
        self, *, completed: int, failed: int, elapsed_s: float
    ) -> None:
        self.write({
            "event": "end",
            "completed": completed,
            "failed": failed,
            "elapsed_s": round(elapsed_s, 6),
        })


def _iter_records(path) -> Iterator[dict]:
    with open(os.fspath(path), encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                # A campaign killed mid-write leaves one truncated
                # trailing line; skip it rather than failing the read.
                continue
            if isinstance(record, dict):
                yield record


def read_journal(path) -> List[dict]:
    """All well-formed records of a journal file, in append order."""
    return list(_iter_records(path))


def finished_fingerprints(path) -> Set[str]:
    """Fingerprints of cells a journal records as successfully finished.

    These are the cells a resumed campaign may skip (their results are
    in the result cache); ``failed`` cells and cells with no terminal
    record are *not* included and will be recomputed.
    """
    finished: Set[str] = set()
    for record in _iter_records(path):
        if record.get("event") == "cell" and record.get("status") in SUCCESS_STATUSES:
            fingerprint = record.get("fingerprint")
            if fingerprint:
                finished.add(fingerprint)
    return finished
