"""Ablation studies for the design choices DESIGN.md calls out.

Each runner compares Killi with one mechanism toggled:

- :func:`ablate_priority_replacement` — the DFH-ordered victim choice
  (paper Section 4.4) vs plain LRU-among-invalid.
- :func:`ablate_eviction_training` — classify-on-evict vs hits-only.
- :func:`ablate_inverted_write_training` — the Section 5.6.2
  masked-fault mitigation on/off (SDC counts).
- :func:`ablate_ecc_ratio` — the ECC-cache size sweep on one workload.
- :func:`ablate_writeback` — write-through vs write-back Killi.
"""

from __future__ import annotations

from typing import Dict

from repro.cache.wbcache import WriteBackCache
from repro.cache.wtcache import WriteThroughCache
from repro.core import KilliConfig, KilliScheme, KilliWriteBackScheme
from repro.faults import FaultMap
from repro.gpu import GpuConfig, GpuSimulator
from repro.traces import workload_trace
from repro.utils.rng import RngFactory

__all__ = [
    "ablate_priority_replacement",
    "ablate_eviction_training",
    "ablate_inverted_write_training",
    "ablate_ecc_ratio",
    "ablate_parity_interleaving",
    "ablate_writeback",
]

LV_VOLTAGE = 0.625


def _run_killi(
    workload: str,
    config: KilliConfig,
    accesses_per_cu: int,
    seed: int,
    scheme_cls=KilliScheme,
    cache_cls=None,
):
    """One (workload, Killi-config) simulation; returns (result, scheme)."""
    rngs = RngFactory(seed)
    gpu_config = GpuConfig()
    fault_map = FaultMap(n_lines=gpu_config.l2.n_lines, rng=rngs.stream("fault-map"))
    trace = workload_trace(
        workload, accesses_per_cu, n_cus=gpu_config.n_cus,
        rng=rngs.stream(f"trace/{workload}"),
    )
    scheme = scheme_cls(
        gpu_config.l2, fault_map, LV_VOLTAGE, config, rng=rngs.stream("mask")
    )
    simulator = GpuSimulator(gpu_config, scheme)
    if cache_cls is not None:
        simulator.l2 = cache_cls(gpu_config.l2, scheme, gpu_config.l2_latencies)
    result = simulator.run(trace)
    return result, scheme, simulator


def _summary(result, scheme) -> Dict:
    return {
        "cycles": result.cycles,
        "mpki": result.l2_mpki,
        "misses": result.l2_stats.misses,
        "error_induced_misses": result.l2_stats.error_induced_misses,
        "ecc_evict_invalidations": result.l2_stats.ecc_evict_invalidations,
        "sdc_events": scheme.sdc_events,
        "dfh": scheme.dfh_histogram(),
    }


def ablate_priority_replacement(
    workload: str = "fft", ecc_ratio: int = 64,
    accesses_per_cu: int = 8000, seed: int = 42,
) -> Dict[str, Dict]:
    """Killi's DFH-priority victim selection on vs off."""
    out = {}
    for label, enabled in (("priority", True), ("plain_lru", False)):
        config = KilliConfig(ecc_ratio=ecc_ratio, priority_replacement=enabled)
        result, scheme, _ = _run_killi(workload, config, accesses_per_cu, seed)
        out[label] = _summary(result, scheme)
    return out


def ablate_eviction_training(
    workload: str = "fft", ecc_ratio: int = 64,
    accesses_per_cu: int = 8000, seed: int = 42,
) -> Dict[str, Dict]:
    """Classify-on-evict (Section 4.4) on vs off."""
    out = {}
    for label, enabled in (("train_on_evict", True), ("hits_only", False)):
        config = KilliConfig(ecc_ratio=ecc_ratio, train_on_evict=enabled)
        result, scheme, _ = _run_killi(workload, config, accesses_per_cu, seed)
        summary = _summary(result, scheme)
        summary["trained_fraction"] = 1.0 - (
            scheme.dfh_histogram().get("INITIAL", 0) / len(scheme.dfh)
        )
        out[label] = summary
    return out


def ablate_inverted_write_training(
    workload: str = "miniamr", ecc_ratio: int = 64,
    accesses_per_cu: int = 8000, seed: int = 42,
) -> Dict[str, Dict]:
    """Inverted-write masked-fault mitigation (Section 5.6.2) on vs off."""
    out = {}
    for label, enabled in (("inverted", True), ("plain", False)):
        config = KilliConfig(ecc_ratio=ecc_ratio, inverted_write_training=enabled)
        result, scheme, _ = _run_killi(workload, config, accesses_per_cu, seed)
        out[label] = _summary(result, scheme)
    return out


def ablate_ecc_ratio(
    workload: str = "fft", ratios=(256, 64, 16),
    accesses_per_cu: int = 8000, seed: int = 42,
) -> Dict[str, Dict]:
    """The paper's own sweep, exposed as an ablation on one workload."""
    out = {}
    for ratio in ratios:
        config = KilliConfig(ecc_ratio=ratio)
        result, scheme, _ = _run_killi(workload, config, accesses_per_cu, seed)
        out[f"1:{ratio}"] = _summary(result, scheme)
    return out


def ablate_parity_interleaving(
    rate_per_access: float = 0.05,
    accesses: int = 30000,
    seed: int = 42,
) -> Dict[str, Dict]:
    """Interleaved vs contiguous parity under adjacent 2-bit bursts.

    Paper Section 4.1: interleaving exists so that spatially-adjacent
    multi-bit soft errors land in different segments.  With contiguous
    segments a 2-bit burst in a (parity-only) b'00 line falls in one
    segment — even count, invisible — and is served as corrupt data.
    """
    from repro.cache.geometry import CacheGeometry
    from repro.cache.wtcache import WriteThroughCache
    from repro.faults.soft_errors import SoftErrorInjector

    geometry = CacheGeometry(size_bytes=256 * 1024, line_bytes=64, associativity=16)
    out = {}
    for label, interleaved in (("interleaved", True), ("contiguous", False)):
        rngs = RngFactory(seed)
        fault_map = FaultMap(n_lines=geometry.n_lines, rng=rngs.stream("fault-map"))
        scheme = KilliScheme(
            geometry, fault_map, LV_VOLTAGE,
            KilliConfig(ecc_ratio=32, interleaved_parity=interleaved),
            rng=rngs.stream("mask"),
            soft_injector=SoftErrorInjector(
                rate_per_access, burst_pmf={2: 1.0}, rng=rngs.stream("soft")
            ),
        )
        cache = WriteThroughCache(geometry, scheme)
        rng = rngs.stream("traffic")
        addrs = rng.integers(0, geometry.size_bytes * 3 // 2, size=accesses)
        for addr in addrs:
            cache.read(int(addr) & ~63)
        out[label] = {
            "sdc_events": scheme.sdc_events,
            "detected": cache.stats.error_induced_misses,
        }
    return out


def ablate_writeback(
    workload: str = "lulesh", ecc_ratio: int = 64,
    accesses_per_cu: int = 8000, seed: int = 42,
) -> Dict[str, Dict]:
    """Write-through Killi vs the write-back extension (Section 5.6.1)."""
    out = {}
    config = KilliConfig(ecc_ratio=ecc_ratio)
    result, scheme, sim = _run_killi(workload, config, accesses_per_cu, seed)
    summary = _summary(result, scheme)
    summary["memory_writes"] = sim.l2.memory_writes
    out["write_through"] = summary

    result, scheme, sim = _run_killi(
        workload, config, accesses_per_cu, seed,
        scheme_cls=KilliWriteBackScheme, cache_cls=WriteBackCache,
    )
    summary = _summary(result, scheme)
    summary["memory_writes"] = sim.l2.memory_writes
    summary["due_on_dirty"] = sim.l2.stats.extra.get("due_on_dirty", 0)
    out["write_back"] = summary
    return out
