"""Ablation studies for the design choices DESIGN.md calls out.

Each runner compares Killi with one mechanism toggled:

- :func:`ablate_priority_replacement` — the DFH-ordered victim choice
  (paper Section 4.4) vs plain LRU-among-invalid.
- :func:`ablate_eviction_training` — classify-on-evict vs hits-only.
- :func:`ablate_inverted_write_training` — the Section 5.6.2
  masked-fault mitigation on/off (SDC counts).
- :func:`ablate_ecc_ratio` — the ECC-cache size sweep on one workload.
- :func:`ablate_writeback` — write-through vs write-back Killi.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core import KilliConfig, KilliScheme
from repro.faults import FaultMap
from repro.harness.runner import LV_VOLTAGE, CellResult, run_cell, run_cells
from repro.scenario.config import ScenarioConfig, cell_scenario
from repro.utils.rng import RngFactory

__all__ = [
    "ablate_priority_replacement",
    "ablate_eviction_training",
    "ablate_inverted_write_training",
    "ablate_ecc_ratio",
    "ablate_parity_interleaving",
    "ablate_writeback",
]


def _killi_spec(
    workload: str,
    ecc_ratio: int,
    accesses_per_cu: int,
    seed: int,
    overrides: Optional[dict] = None,
    write_back: bool = False,
) -> ScenarioConfig:
    """One (workload, Killi-config) ablation cell."""
    return cell_scenario(
        workload,
        f"killi_1:{ecc_ratio}",
        voltage=LV_VOLTAGE,
        seed=seed,
        accesses_per_cu=accesses_per_cu,
        scheme_config=overrides or {},
        write_back=write_back,
    )


def _summary(cell: CellResult) -> Dict:
    return {
        "cycles": cell.cycles,
        "mpki": cell.l2_mpki,
        "misses": cell.l2_misses,
        "error_induced_misses": cell.l2.get("error_induced_misses", 0),
        "ecc_evict_invalidations": cell.l2.get("ecc_evict_invalidations", 0),
        "sdc_events": cell.sdc_events,
        "dfh": cell.dfh,
    }


def ablate_priority_replacement(
    workload: str = "fft", ecc_ratio: int = 64,
    accesses_per_cu: int = 8000, seed: int = 42, jobs: int = 1,
    retries: int = 0, journal=None,
) -> Dict[str, Dict]:
    """Killi's DFH-priority victim selection on vs off."""
    labels = {"priority": True, "plain_lru": False}
    cells = run_cells(
        [
            _killi_spec(workload, ecc_ratio, accesses_per_cu, seed,
                        {"priority_replacement": enabled})
            for enabled in labels.values()
        ],
        jobs=jobs,
        retries=retries,
        journal=journal,
    )
    return {label: _summary(cell) for label, cell in zip(labels, cells)}


def ablate_eviction_training(
    workload: str = "fft", ecc_ratio: int = 64,
    accesses_per_cu: int = 8000, seed: int = 42, jobs: int = 1,
    retries: int = 0, journal=None,
) -> Dict[str, Dict]:
    """Classify-on-evict (Section 4.4) on vs off."""
    labels = {"train_on_evict": True, "hits_only": False}
    cells = run_cells(
        [
            _killi_spec(workload, ecc_ratio, accesses_per_cu, seed,
                        {"train_on_evict": enabled})
            for enabled in labels.values()
        ],
        jobs=jobs,
        retries=retries,
        journal=journal,
    )
    out = {}
    for label, cell in zip(labels, cells):
        summary = _summary(cell)
        summary["trained_fraction"] = 1.0 - (
            (cell.dfh or {}).get("INITIAL", 0) / cell.dfh_lines
        )
        out[label] = summary
    return out


def ablate_inverted_write_training(
    workload: str = "miniamr", ecc_ratio: int = 64,
    accesses_per_cu: int = 8000, seed: int = 42, jobs: int = 1,
    retries: int = 0, journal=None,
) -> Dict[str, Dict]:
    """Inverted-write masked-fault mitigation (Section 5.6.2) on vs off."""
    labels = {"inverted": True, "plain": False}
    cells = run_cells(
        [
            _killi_spec(workload, ecc_ratio, accesses_per_cu, seed,
                        {"inverted_write_training": enabled})
            for enabled in labels.values()
        ],
        jobs=jobs,
        retries=retries,
        journal=journal,
    )
    return {label: _summary(cell) for label, cell in zip(labels, cells)}


def ablate_ecc_ratio(
    workload: str = "fft", ratios=(256, 64, 16),
    accesses_per_cu: int = 8000, seed: int = 42, jobs: int = 1,
    retries: int = 0, journal=None,
) -> Dict[str, Dict]:
    """The paper's own sweep, exposed as an ablation on one workload."""
    cells = run_cells(
        [
            _killi_spec(workload, ratio, accesses_per_cu, seed)
            for ratio in ratios
        ],
        jobs=jobs,
        retries=retries,
        journal=journal,
    )
    return {f"1:{ratio}": _summary(cell) for ratio, cell in zip(ratios, cells)}


def ablate_parity_interleaving(
    rate_per_access: float = 0.05,
    accesses: int = 30000,
    seed: int = 42,
) -> Dict[str, Dict]:
    """Interleaved vs contiguous parity under adjacent 2-bit bursts.

    Paper Section 4.1: interleaving exists so that spatially-adjacent
    multi-bit soft errors land in different segments.  With contiguous
    segments a 2-bit burst in a (parity-only) b'00 line falls in one
    segment — even count, invisible — and is served as corrupt data.
    """
    from repro.cache.geometry import CacheGeometry
    from repro.cache.core import WriteThroughCache
    from repro.faults.soft_errors import SoftErrorInjector

    geometry = CacheGeometry(size_bytes=256 * 1024, line_bytes=64, associativity=16)
    out = {}
    for label, interleaved in (("interleaved", True), ("contiguous", False)):
        rngs = RngFactory(seed)
        fault_map = FaultMap(n_lines=geometry.n_lines, rng=rngs.stream("fault-map"))
        scheme = KilliScheme(
            geometry, fault_map, LV_VOLTAGE,
            KilliConfig(ecc_ratio=32, interleaved_parity=interleaved),
            rng=rngs.stream("mask"),
            soft_injector=SoftErrorInjector(
                rate_per_access, burst_pmf={2: 1.0}, rng=rngs.stream("soft")
            ),
        )
        cache = WriteThroughCache(geometry, scheme)
        rng = rngs.stream("traffic")
        addrs = rng.integers(0, geometry.size_bytes * 3 // 2, size=accesses)
        for addr in addrs:
            cache.read(int(addr) & ~63)
        out[label] = {
            "sdc_events": scheme.sdc_events,
            "detected": cache.stats.error_induced_misses,
        }
    return out


def ablate_writeback(
    workload: str = "lulesh", ecc_ratio: int = 64,
    accesses_per_cu: int = 8000, seed: int = 42,
) -> Dict[str, Dict]:
    """Write-through Killi vs the write-back extension (Section 5.6.1)."""
    out = {}
    cell = run_cell(_killi_spec(workload, ecc_ratio, accesses_per_cu, seed))
    summary = _summary(cell)
    summary["memory_writes"] = cell.memory_writes
    out["write_through"] = summary

    cell = run_cell(
        _killi_spec(workload, ecc_ratio, accesses_per_cu, seed, write_back=True)
    )
    summary = _summary(cell)
    summary["memory_writes"] = cell.memory_writes
    summary["due_on_dirty"] = cell.l2.get("due_on_dirty", 0)
    out["write_back"] = summary
    return out
