"""Deterministic worker-fault injection for campaign-robustness tests.

The retry/isolation machinery in :func:`repro.harness.runner.run_cells`
needs crashes to test against, but :func:`run_cell` is a pure function
of its spec — results must never depend on the environment.  So faults
are injected *around* the cell, in the runner's execution wrapper,
driven entirely by the ``REPRO_INJECT_FAULTS`` environment variable:

    REPRO_INJECT_FAULTS="times=1,dir=.inject"            # every cell's
                                                         # 1st attempt raises
    REPRO_INJECT_FAULTS="times=2,dir=.inject,match=lulesh"  # only cells whose
                                                            # fingerprint or
                                                            # workload/scheme
                                                            # label matches
    REPRO_INJECT_FAULTS="times=1,dir=.inject,mode=kill"  # hard-kill the
                                                         # worker process
    REPRO_INJECT_FAULTS="times=1,dir=.inject,mode=hang,hang_s=30"

``dir`` is a state directory holding one ``<fingerprint>.attempts``
counter file per cell, so the "fail the first N attempts, then
succeed" contract holds across worker processes and pool rebuilds.
The runner dedupes cells by fingerprint (one in-flight execution per
fingerprint), so counter files are never written concurrently.

Because injection fires *before* the simulation and the retried cell
then runs clean, a campaign that survives injection produces results
bit-identical to an uninjected run — which is exactly what the
crash-injection tests and the CI ``campaign-robustness`` job assert.

When ``REPRO_INJECT_FAULTS`` is unset (production), the hook is a
single dictionary lookup.
"""

from __future__ import annotations

import os
import time

__all__ = ["INJECT_ENV", "InjectedWorkerFault", "maybe_inject"]

#: Environment variable holding the injection spec.
INJECT_ENV = "REPRO_INJECT_FAULTS"

_MODES = ("raise", "hang", "kill")


class InjectedWorkerFault(RuntimeError):
    """The synthetic failure raised by ``mode=raise`` injection."""


def _parse(raw: str) -> dict:
    cfg = {"times": 1, "dir": None, "match": "", "mode": "raise", "hang_s": 30.0}
    for part in raw.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep or key not in cfg:
            raise ValueError(
                f"{INJECT_ENV}: bad field {part!r}; expected "
                f"key=value with key in {sorted(cfg)}"
            )
        if key == "times":
            cfg["times"] = int(value)
        elif key == "hang_s":
            cfg["hang_s"] = float(value)
        else:
            cfg[key] = value
    if not cfg["dir"]:
        raise ValueError(f"{INJECT_ENV}: a dir=<state directory> field is required")
    if cfg["mode"] not in _MODES:
        raise ValueError(
            f"{INJECT_ENV}: unknown mode {cfg['mode']!r}; expected one of {_MODES}"
        )
    return cfg


def maybe_inject(fingerprint: str, label: str = "") -> None:
    """Fail this execution attempt if the environment says so.

    Called by the runner's per-attempt wrapper (never by ``run_cell``
    itself).  ``match=`` substrings are tested against the fingerprint
    *and* the optional human-readable ``label`` (the runner passes
    ``"<workload>/<scheme>"``), so a test can target e.g.
    ``match=baseline`` without knowing the hash.  Each call for a
    matching cell increments that cell's attempt counter; the first
    ``times`` attempts fail in the configured ``mode``:

    - ``raise`` — raise :class:`InjectedWorkerFault` (a plain worker
      exception; exercises per-cell isolation + retry),
    - ``kill`` — ``os._exit`` the process (exercises
      ``BrokenProcessPool`` recovery and pool rebuild),
    - ``hang`` — sleep ``hang_s`` seconds (exercises ``--timeout``).
    """
    raw = os.environ.get(INJECT_ENV)
    if not raw:
        return
    cfg = _parse(raw)
    if cfg["match"] and cfg["match"] not in fingerprint and cfg["match"] not in label:
        return
    os.makedirs(cfg["dir"], exist_ok=True)
    counter = os.path.join(cfg["dir"], f"{fingerprint}.attempts")
    try:
        with open(counter, encoding="utf-8") as handle:
            count = int(handle.read().strip() or 0)
    except (OSError, ValueError):
        count = 0
    count += 1
    with open(counter, "w", encoding="utf-8") as handle:
        handle.write(str(count))
    if count > cfg["times"]:
        return
    if cfg["mode"] == "kill":
        os._exit(17)
    if cfg["mode"] == "hang":
        time.sleep(cfg["hang_s"])
        return
    raise InjectedWorkerFault(
        f"injected worker fault (attempt {count}/{cfg['times']}) "
        f"for cell {fingerprint[:12]}"
    )
