"""Power-state-transition experiment — the paper's core motivation.

The introduction's argument against MBIST-based LV schemes: "these
additional MBIST steps are time consuming, resulting in extended boot
time or delayed power state transitions".  This experiment puts a
number on it.

Scenario: a workload runs while the L2 transitions into a low-voltage
power state (and optionally back).  Two strategies:

- **MBIST-based** (FLAIR/DECTED/MS-ECC style): at the transition the
  cache is unavailable for the duration of the MBIST pass — every
  line must be written and read with multiple patterns.  We charge the
  documented cost ``n_lines * mbist_cycles_per_line`` as a stall (and
  the cache restarts cold), then execution continues with the oracle
  fault map.
- **Killi**: the transition is a DFH reset; execution continues
  *immediately* at full bandwidth while classification happens on the
  fly, paying only the gradual training overhead (extra misses).

The interesting output is the total cycles to complete the same work
including the transition, as a function of how often transitions
happen — Killi wins whenever transitions are frequent relative to the
MBIST cost, which is exactly the DVFS-heavy GPU environment the paper
targets.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.hooks import UnprotectedScheme
from repro.core import KilliConfig
from repro.faults import FaultMap
from repro.gpu import GpuConfig, GpuSimulator
from repro.scenario.schemes import resolve_scheme
from repro.traces import workload_trace
from repro.utils.rng import RngFactory

__all__ = ["TransitionResult", "power_transition_experiment"]

#: MBIST cost per line in cycles: conservative — a handful of
#: write/read pattern passes per line (March-style tests are longer).
MBIST_CYCLES_PER_LINE = 8


@dataclass
class TransitionResult:
    """Outcome of one strategy across the transition scenario."""

    strategy: str
    total_cycles: int
    stall_cycles: int
    execution_cycles: int
    l2_misses: int


def power_transition_experiment(
    workload: str = "lulesh",
    n_transitions: int = 4,
    accesses_per_phase: int = 4000,
    voltage: float = 0.625,
    seed: int = 42,
    mbist_cycles_per_line: int = MBIST_CYCLES_PER_LINE,
    killi_scheme_name: str = "killi_1:64",
    mbist_scheme_name: str = "flair",
) -> dict:
    """Run the transition scenario for Killi vs an MBIST-based scheme.

    The workload is split into ``n_transitions + 1`` phases; between
    phases the L2 enters/leaves the LV state.  Both strategies execute
    identical traffic; they differ in what a transition costs.  The
    contenders are experiment-axis scheme names resolved through the
    registry: any Killi-family name for the transition-free side, any
    oracle (MBIST-trained) scheme for the stalling side.
    """
    killi_factory = resolve_scheme(killi_scheme_name)
    if killi_factory.kind != "killi":
        raise ValueError(
            f"killi_scheme_name must be a Killi-family scheme, "
            f"got {killi_scheme_name!r} ({killi_factory.kind})"
        )
    mbist_factory = resolve_scheme(mbist_scheme_name)
    if mbist_factory.kind != "oracle":
        raise ValueError(
            f"mbist_scheme_name must be an MBIST-trained (oracle) scheme, "
            f"got {mbist_scheme_name!r} ({mbist_factory.kind})"
        )
    rngs = RngFactory(seed)
    gpu_config = GpuConfig()
    fault_map = FaultMap(n_lines=gpu_config.l2.n_lines, rng=rngs.stream("fault-map"))
    phases = [
        workload_trace(
            workload, accesses_per_phase, n_cus=gpu_config.n_cus,
            rng=rngs.stream(f"trace/{index}"),
        )
        for index in range(n_transitions + 1)
    ]

    # Reference: fault-free cache, no transitions (for normalisation).
    reference = GpuSimulator(gpu_config, UnprotectedScheme())
    reference_cycles = sum(r.cycles for r in reference.run_kernels(phases))

    # Killi: each transition is a DFH reset; execution continues.
    killi_config = KilliConfig(ecc_ratio=killi_factory.params["ecc_ratio"])
    killi_kwargs = {"rng": rngs.stream("mask")}
    if killi_factory.params.get("code") is not None:
        killi_kwargs["code"] = killi_factory.params["code"]
    killi_scheme = killi_factory.scheme_class(
        gpu_config.l2, fault_map, voltage, killi_config, **killi_kwargs
    )
    killi_sim = GpuSimulator(gpu_config, killi_scheme)
    killi_cycles = 0
    for index, phase in enumerate(phases):
        if index:
            killi_scheme.change_voltage(voltage)  # reset + relearn
        killi_cycles += killi_sim.run(phase).cycles
    killi = TransitionResult(
        strategy=(
            "killi" if killi_scheme_name == "killi_1:64" else killi_scheme_name
        ),
        total_cycles=killi_cycles,
        stall_cycles=0,
        execution_cycles=killi_cycles,
        l2_misses=killi_sim.l2.stats.misses,
    )

    # MBIST-based (FLAIR-style): each transition stalls for the MBIST
    # pass and restarts the cache cold; execution then proceeds with
    # the oracle fault map.
    mbist_stall = gpu_config.l2.n_lines * mbist_cycles_per_line
    flair_scheme = mbist_factory.scheme_class(gpu_config.l2, fault_map, voltage)
    flair_sim = GpuSimulator(gpu_config, flair_scheme)
    flair_cycles = 0
    stall_total = 0
    for index, phase in enumerate(phases):
        if index:
            flair_sim.l2.reset()  # cold restart after the test pass
            stall_total += mbist_stall
        flair_cycles += flair_sim.run(phase).cycles
    flair = TransitionResult(
        strategy=f"{mbist_scheme_name}+mbist",
        total_cycles=flair_cycles + stall_total,
        stall_cycles=stall_total,
        execution_cycles=flair_cycles,
        l2_misses=flair_sim.l2.stats.misses,
    )

    return {
        "workload": workload,
        "n_transitions": n_transitions,
        "mbist_cycles_per_line": mbist_cycles_per_line,
        "reference_cycles": reference_cycles,
        "killi": killi,
        "flair": flair,
    }
