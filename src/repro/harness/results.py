"""Result containers for the performance experiments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.utils.tables import format_table

__all__ = ["PerfPoint", "PerformanceMatrix"]


@dataclass
class PerfPoint:
    """One (workload, scheme) cell of the Figure 4/5 matrix."""

    workload: str
    scheme: str
    cycles: int
    instructions: int
    l2_misses: int
    error_induced_misses: int = 0
    ecc_evict_invalidations: int = 0
    memory_reads: int = 0
    memory_writes: int = 0

    @property
    def mpki(self) -> float:
        return 1000.0 * self.l2_misses / self.instructions


@dataclass
class PerformanceMatrix:
    """All (workload, scheme) results of one Figure 4/5 run.

    ``points[workload][scheme]`` holds a :class:`PerfPoint`; the
    baseline scheme name is used for normalisation.
    """

    baseline: str = "baseline"
    points: Dict[str, Dict[str, PerfPoint]] = field(default_factory=dict)

    def add(self, point: PerfPoint) -> None:
        self.points.setdefault(point.workload, {})[point.scheme] = point

    def workloads(self):
        return list(self.points)

    def schemes(self):
        seen = []
        for per_workload in self.points.values():
            for scheme in per_workload:
                if scheme not in seen:
                    seen.append(scheme)
        return seen

    def normalized_time(self, workload: str, scheme: str) -> float:
        """Figure 4's metric: cycles normalized to the fault-free baseline."""
        base = self.points[workload][self.baseline].cycles
        return self.points[workload][scheme].cycles / base

    def mpki(self, workload: str, scheme: str) -> float:
        """Figure 5's metric."""
        return self.points[workload][scheme].mpki

    def extra_memory_frac(self, workload: str, scheme: str) -> float:
        """Extra memory reads over baseline (power-model input)."""
        base = self.points[workload][self.baseline].memory_reads
        if base == 0:
            return 0.0
        return self.points[workload][scheme].memory_reads / base - 1.0

    def fig4_table(self) -> str:
        """Render the Figure 4 matrix as text."""
        schemes = self.schemes()
        rows = [
            [workload] + [f"{self.normalized_time(workload, s):.4f}" for s in schemes]
            for workload in self.workloads()
        ]
        return format_table(
            ["workload"] + schemes, rows, title="Figure 4: normalized execution time"
        )

    def fig5_table(self) -> str:
        """Render the Figure 5 matrix as text."""
        schemes = self.schemes()
        rows = [
            [workload] + [f"{self.mpki(workload, s):.2f}" for s in schemes]
            for workload in self.workloads()
        ]
        return format_table(
            ["workload"] + schemes, rows, title="Figure 5: L2 MPKI"
        )
