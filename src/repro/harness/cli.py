"""``killi-experiment`` command-line interface.

Examples::

    killi-experiment table5
    killi-experiment fig6
    killi-experiment fig4 --accesses 10000 --workloads fft xsbench
    killi-experiment fig4 --schemes baseline killi_1:64 killi+olsc-t11_1:8
    killi-experiment fig4 --jobs 4 --cache .killi-cache
    killi-experiment all --quick

Hardened campaigns (see ``docs/campaign-robustness.md``)::

    killi-experiment fig4 --jobs 8 --cache .killi-cache --retries 2 \
        --timeout 600 --journal runs/fig4.jsonl --telemetry
    killi-experiment fig4 --jobs 8 --cache .killi-cache \
        --resume runs/fig4.jsonl        # recompute only unfinished cells

File-driven scenario runs (see ``docs/scenario-layer.md``)::

    killi-experiment scenario run examples/scenarios/fig4_slice.toml
    killi-experiment scenario validate examples/scenarios/*.toml
    killi-experiment scenario list
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.harness import experiments
from repro.metrics import METRICS
from repro.harness.runner import CampaignError
from repro.utils.tables import format_table

__all__ = ["main", "scenario_main"]


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _nonnegative_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected an integer, got {text!r}")
    if value < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0, got {value}")
    return value


def _positive_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected a number, got {text!r}")
    if not value > 0:
        raise argparse.ArgumentTypeError(f"must be > 0, got {value}")
    return value


def _add_campaign_args(parser: argparse.ArgumentParser) -> None:
    """The campaign-hardening flags shared by every simulation command."""
    parser.add_argument(
        "--retries", type=_nonnegative_int, default=0, metavar="N",
        help="retry crashed/timed-out cells up to N times with jittered "
             "backoff (default 0); retried cells are bit-identical",
    )
    parser.add_argument(
        "--timeout", type=_positive_float, default=None, metavar="SECONDS",
        help="per-cell wall-clock budget; a timed-out attempt counts "
             "against --retries",
    )
    parser.add_argument(
        "--journal", metavar="FILE", default=None,
        help="append one JSONL event per cell (plus campaign start/end) "
             "to FILE; makes the run resumable via --resume",
    )
    parser.add_argument(
        "--resume", metavar="JOURNAL", default=None,
        help="skip cells a previous run's journal records as finished "
             "(their results replay from --cache; requires --cache)",
    )
    parser.add_argument(
        "--telemetry", action="store_true",
        help="collect counters/timers across the campaign (cache, "
             "retries, engine phases) and print a summary table",
    )


def _finish_telemetry(args) -> None:
    if getattr(args, "telemetry", False):
        print()
        print(METRICS.summary_table())


def _report_campaign_failure(error: CampaignError) -> None:
    print(f"campaign failed: {error}", file=sys.stderr)
    rows = [
        (f.index, f.fingerprint[:12], f.attempts, f.error_type, f.message[:60])
        for f in error.failures
    ]
    print(
        format_table(
            ["cell", "fingerprint", "attempts", "error", "message"],
            rows,
            title="permanently failed cells",
        ),
        file=sys.stderr,
    )


def _progress_printer(args):
    """Per-cell progress reporter for parallel/cached runs (stderr)."""
    if args.jobs <= 1 and not args.cache:
        return None

    def report(done, total, cell):
        tag = " (cached)" if cell.from_cache else f" {cell.elapsed_s:.1f}s"
        print(
            f"[{done}/{total}] {cell.workload}/{cell.scheme}{tag}",
            file=sys.stderr,
        )

    return report


def _print_series(title: str, data: dict) -> None:
    keys = [k for k in data if k != "voltage"]
    rows = list(zip(data["voltage"], *(data[k] for k in keys)))
    print(format_table(["voltage"] + keys, rows, title=title))
    print()


def _run_fig1() -> None:
    _print_series("Figure 1: SRAM cell Pfail vs normalized VDD", experiments.fig1_cell_pfail())


def _run_fig2() -> None:
    _print_series("Figure 2: % lines with 0/1/2+ faults", experiments.fig2_line_distribution())


def _run_fig6() -> None:
    _print_series("Figure 6: % lines correctly classified", experiments.fig6_coverage())


def _run_perf(args) -> None:
    matrix = experiments.fig4_fig5_performance(
        workloads=args.workloads or None,
        schemes=args.schemes or None,
        accesses_per_cu=args.accesses,
        seed=args.seed,
        jobs=args.jobs,
        cache_dir=args.cache,
        progress=_progress_printer(args),
        engine=args.engine,
        substrate=args.substrate,
        retries=args.retries,
        timeout=args.timeout,
        journal=args.journal,
        resume=args.resume,
    )
    print(matrix.fig4_table())
    print()
    print(matrix.fig5_table())
    print()
    table6 = experiments.table6_power(matrix)
    print(format_table(
        ["scheme", "normalized power %"],
        [(k, f"{v:.1f}") for k, v in table6.items()],
        title="Table 6: normalized power (with measured memory traffic)",
    ))


def _run_table4() -> None:
    data = experiments.table4_strong_ecc()
    ratios = list(next(iter(data.values())))
    rows = [[code] + [f"{data[code][r]:.2f}" for r in ratios] for code in data]
    print(format_table(["code"] + ratios, rows, title="Table 4: Killi storage vs SECDED"))


def _run_table5() -> None:
    data = experiments.table5_area()
    rows = [
        [name, f"{v['ratio']:.2f}", f"{v['percent']:.2f}%"] for name, v in data.items()
    ]
    print(format_table(["scheme", "ratio vs SECDED", "% of L2"], rows, title="Table 5: area"))


def _run_table6() -> None:
    data = experiments.table6_power()
    rows = [(k, f"{v:.1f}") for k, v in data.items()]
    print(format_table(["scheme", "normalized power %"], rows, title="Table 6: power"))


def _run_table7() -> None:
    data = experiments.table7_olsc()
    rows = [
        (v, f"{d['capacity_pct']:.1f}%", f"{100 * d['killi_vs_msecc']:.0f}%")
        for v, d in data.items()
    ]
    print(format_table(
        ["voltage", "L2 capacity target", "Killi area vs MS-ECC"],
        rows,
        title="Table 7: Killi w/OLSC vs MS-ECC",
    ))


def _run_sec55(args) -> None:
    data = experiments.sec55_lower_vmin(
        accesses_per_cu=min(args.accesses, 8000),
        jobs=args.jobs,
        cache_dir=args.cache,
        retries=args.retries,
        timeout=args.timeout,
        journal=args.journal,
        resume=args.resume,
    )
    rows = []
    for key in ("baseline", "msecc", "killi_secded_1:8", "killi_olsc_1:8"):
        row = data[key]
        rows.append([
            key,
            f"{row.get('normalized_time', 1.0):.3f}",
            f"{row['mpki']:.1f}",
            f"{row['disabled_fraction']:.2%}",
        ])
    print(format_table(
        ["scheme", "normalized time", "MPKI", "disabled lines"],
        rows,
        title=f"Section 5.5 at {data['voltage']} VDD ({data['workload']})",
    ))


def _export_csv(args) -> None:
    """Write the selected experiment's raw data as CSV files."""
    import os

    from repro.harness.export import (
        matrix_to_csv,
        nested_table_to_csv,
        series_to_csv,
        write_csv,
    )

    os.makedirs(args.csv, exist_ok=True)

    def path(name: str) -> str:
        return os.path.join(args.csv, f"{name}.csv")

    name = args.experiment
    if name in ("fig1", "fig2", "fig6"):
        runner = {
            "fig1": experiments.fig1_cell_pfail,
            "fig2": experiments.fig2_line_distribution,
            "fig6": experiments.fig6_coverage,
        }[name]
        write_csv(path(name), series_to_csv(runner()))
    elif name in ("table4", "table5"):
        runner = {
            "table4": experiments.table4_strong_ecc,
            "table5": experiments.table5_area,
        }[name]
        write_csv(path(name), nested_table_to_csv(runner()))
    elif name == "table6":
        table = experiments.table6_power()
        write_csv(
            path(name),
            nested_table_to_csv({k: {"power_pct": v} for k, v in table.items()},
                                row_label="scheme"),
        )
    elif name in ("fig4", "fig5"):
        matrix = experiments.fig4_fig5_performance(
            workloads=args.workloads or None,
            schemes=args.schemes or None,
            accesses_per_cu=args.accesses,
            seed=args.seed,
            jobs=args.jobs,
            cache_dir=args.cache,
            retries=args.retries,
            timeout=args.timeout,
        )
        write_csv(path("fig4_fig5"), matrix_to_csv(matrix))
    print(f"CSV written under {args.csv}/")


# -- scenario subcommand ------------------------------------------------------


def _scenario_progress(done, total, cell):
    tag = " (cached)" if cell.from_cache else f" {cell.elapsed_s:.1f}s"
    print(
        f"[{done}/{total}] {cell.workload}/{cell.scheme}"
        f"@{cell.voltage:g}V{tag}",
        file=sys.stderr,
    )


def _scenario_run(args) -> int:
    from repro.scenario.runfile import load_scenario, run_scenario

    if args.telemetry:
        METRICS.enable()
    scenario = load_scenario(args.file)
    try:
        summary = run_scenario(
            scenario,
            jobs=args.jobs,
            cache_dir=args.cache,
            progress=_scenario_progress if not args.no_progress else None,
            retries=args.retries,
            timeout=args.timeout,
            journal=args.journal,
            resume=args.resume,
        )
    except CampaignError as error:
        _report_campaign_failure(error)
        _finish_telemetry(args)
        return 1
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(summary, handle, indent=2)
        print(f"results written to {args.json}", file=sys.stderr)
    rows = [
        (
            cell["workload"],
            cell["scheme"],
            f"{cell['voltage']:g}",
            cell["seed"],
            cell["cycles"],
            f"{1000.0 * (cell['l2']['read_misses'] + cell['l2']['write_misses']) / cell['instructions']:.1f}"
            if cell["instructions"]
            else "0.0",
            f"{cell['disabled_fraction']:.2%}",
        )
        for cell in summary["cells"]
    ]
    title = f"scenario {scenario.name} ({summary['fingerprint'][:12]})"
    print(format_table(
        ["workload", "scheme", "VDD", "seed", "cycles", "MPKI", "disabled"],
        rows,
        title=title,
    ))
    _finish_telemetry(args)
    return 0


def _scenario_validate(args) -> int:
    from repro.scenario.runfile import load_scenario

    failures = 0
    for path in args.files:
        try:
            scenario = load_scenario(path)
            cells = scenario.validate()
        except (OSError, KeyError, ValueError) as error:
            print(f"FAIL {path}: {error}")
            failures += 1
            continue
        print(
            f"ok   {path}: {scenario.name!r}, {len(cells)} cell(s), "
            f"fingerprint {scenario.fingerprint()[:12]}"
        )
    return 1 if failures else 0


def _scenario_list(args) -> int:
    import glob
    import os

    from repro.scenario.registries import (
        ENGINE_REGISTRY,
        SCHEME_REGISTRY,
        SUBSTRATE_REGISTRY,
        WORKLOAD_REGISTRY,
    )
    from repro.scenario.runfile import load_scenario

    paths = sorted(
        glob.glob(os.path.join(args.dir, "*.toml"))
        + glob.glob(os.path.join(args.dir, "*.json"))
    )
    if paths:
        rows = []
        for path in paths:
            try:
                scenario = load_scenario(path)
                rows.append(
                    (path, scenario.name, len(scenario.expand()),
                     scenario.description or "-")
                )
            except (OSError, ValueError) as error:
                rows.append((path, "<invalid>", "-", str(error)[:60]))
        print(format_table(
            ["file", "name", "cells", "description"],
            rows,
            title=f"scenario files under {args.dir}/",
        ))
    else:
        print(f"no scenario files under {args.dir}/")
    print()
    for label, registry in (
        ("schemes", SCHEME_REGISTRY),
        ("workloads", WORKLOAD_REGISTRY),
        ("engines", ENGINE_REGISTRY),
        ("substrates", SUBSTRATE_REGISTRY),
    ):
        print(f"{label}: {', '.join(registry.names())}")
    return 0


def scenario_main(argv=None) -> int:
    """Entry point for ``killi-experiment scenario ...``."""
    parser = argparse.ArgumentParser(
        prog="killi-experiment scenario",
        description="Run, validate and list declarative scenario files.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="execute a scenario file")
    run_p.add_argument("file", help="scenario .toml/.json file")
    run_p.add_argument("--jobs", type=_positive_int, default=1, metavar="N")
    run_p.add_argument(
        "--cache", metavar="DIR", default=None,
        help="fingerprint-keyed on-disk result cache",
    )
    run_p.add_argument(
        "--json", metavar="FILE", default=None,
        help="also write the full per-cell results as JSON",
    )
    run_p.add_argument("--no-progress", action="store_true")
    _add_campaign_args(run_p)

    val_p = sub.add_parser("validate", help="validate scenario files")
    val_p.add_argument("files", nargs="+", help="scenario .toml/.json files")

    list_p = sub.add_parser(
        "list", help="list scenario files and registered plugin names"
    )
    list_p.add_argument("--dir", default="examples/scenarios")

    args = parser.parse_args(argv)
    return {
        "run": _scenario_run,
        "validate": _scenario_validate,
        "list": _scenario_list,
    }[args.command](args)


def main(argv=None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "scenario":
        return scenario_main(argv[1:])
    if argv and argv[0] == "fuzz":
        from repro.testing.cli import fuzz_main

        return fuzz_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="killi-experiment",
        description="Regenerate the Killi paper's tables and figures.",
    )
    parser.add_argument(
        "experiment",
        choices=["fig1", "fig2", "fig4", "fig5", "fig6",
                 "table4", "table5", "table6", "table7", "sec55", "all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--accesses", type=int, default=30000,
        help="accesses per CU for simulation experiments (default 30000)",
    )
    parser.add_argument(
        "--workloads", nargs="*", default=None,
        help="restrict Figure 4/5 to these workloads",
    )
    parser.add_argument(
        "--schemes", nargs="*", default=None,
        help="restrict Figure 4/5 to these scheme names — any name the "
             "scheme registry resolves, including killi+<code>_1:<ratio> "
             "strong-code variants (baseline is always included)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--engine", default="vectorized", metavar="NAME",
        help="simulation inner loop for Figure 4/5 cells — any name in "
             "the engine registry (scalar, vectorized, batched); all "
             "engines are pinned bit-identical, so this only changes "
             "wall-clock time",
    )
    parser.add_argument(
        "--substrate", default=None, metavar="NAME",
        help="tag/LRU backing (object, soa); default = session default. "
             "Bit-identical across substrates",
    )
    parser.add_argument(
        "--jobs", type=_positive_int, default=1, metavar="N",
        help="worker processes for simulation matrices (default 1: serial; "
             "results are bit-identical at any N)",
    )
    parser.add_argument(
        "--cache", metavar="DIR", default=None,
        help="on-disk result cache: unchanged (workload, scheme, voltage, "
             "seed) cells are re-loaded instead of re-simulated",
    )
    _add_campaign_args(parser)
    parser.add_argument(
        "--quick", action="store_true",
        help="shrink simulation experiments (5000 accesses per CU)",
    )
    parser.add_argument(
        "--csv", metavar="DIR", default=None,
        help="also write the experiment's data as CSV into DIR",
    )
    args = parser.parse_args(argv)
    if args.quick:
        args.accesses = 5000
    if args.telemetry:
        METRICS.enable()
    try:
        if args.csv:
            _export_csv(args)

        analytic = {
            "fig1": _run_fig1,
            "fig2": _run_fig2,
            "fig6": _run_fig6,
            "table4": _run_table4,
            "table5": _run_table5,
            "table6": _run_table6,
            "table7": _run_table7,
        }
        if args.experiment in ("fig4", "fig5"):
            _run_perf(args)
        elif args.experiment == "sec55":
            _run_sec55(args)
        elif args.experiment == "all":
            for runner in analytic.values():
                runner()
                print()
            _run_perf(args)
        else:
            analytic[args.experiment]()
    except CampaignError as error:
        _report_campaign_failure(error)
        _finish_telemetry(args)
        return 1
    _finish_telemetry(args)
    return 0


if __name__ == "__main__":
    sys.exit(main())
